package kv

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		OpGet:    "get",
		OpPut:    "put",
		OpMerge:  "merge",
		OpDelete: "delete",
		OpFGet:   "fget",
		Op(200):  "op(200)",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
}

func TestOpIsRead(t *testing.T) {
	if !OpGet.IsRead() || !OpFGet.IsRead() {
		t.Error("get/fget should be reads")
	}
	if OpPut.IsRead() || OpMerge.IsRead() || OpDelete.IsRead() {
		t.Error("put/merge/delete should not be reads")
	}
}

func TestStateKeyEncodeDecodeRoundTrip(t *testing.T) {
	f := func(group, sub uint64) bool {
		k := StateKey{Group: group, Sub: sub}
		enc := k.Bytes()
		if len(enc) != KeyLen {
			return false
		}
		dec, err := DecodeStateKey(enc)
		return err == nil && dec == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStateKeyEncodeAppends(t *testing.T) {
	prefix := []byte("abc")
	out := StateKey{Group: 1, Sub: 2}.Encode(prefix)
	if !bytes.HasPrefix(out, prefix) || len(out) != 3+KeyLen {
		t.Fatalf("Encode did not append: len=%d", len(out))
	}
}

func TestDecodeStateKeyBadLength(t *testing.T) {
	if _, err := DecodeStateKey(make([]byte, 7)); err == nil {
		t.Fatal("want error for short key")
	}
	if _, err := DecodeStateKey(make([]byte, 17)); err == nil {
		t.Fatal("want error for long key")
	}
}

// Byte order of encoded keys must agree with StateKey.Less so that
// engines sorting by bytes see the same order analyses compute on structs.
func TestStateKeyOrderMatchesByteOrder(t *testing.T) {
	f := func(g1, s1, g2, s2 uint64) bool {
		a := StateKey{g1, s1}
		b := StateKey{g2, s2}
		byteLess := bytes.Compare(a.Bytes(), b.Bytes()) < 0
		return byteLess == a.Less(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStateKeyString(t *testing.T) {
	if got := (StateKey{3, 9}).String(); got != "3/9" {
		t.Fatalf("String() = %q", got)
	}
}

type capStore struct{ Store }

func (capStore) Caps() Capabilities { return Capabilities{InPlaceUpdate: true} }

func TestCapsOf(t *testing.T) {
	var plain Store // nil store without Capabler advertises nothing
	if c := CapsOf(plain); c != (Capabilities{}) {
		t.Errorf("default caps should be the zero value, got %+v", c)
	}
	if c := CapsOf(capStore{}); c.NativeMerge || !c.InPlaceUpdate {
		t.Errorf("capStore caps = %+v", c)
	}
}
