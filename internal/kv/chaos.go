package kv

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ChaosPlan describes a deterministic, seeded schedule of operation-level
// faults — the network/engine twin of vfs.FaultPlan, which injects faults
// at the filesystem layer. All randomness derives from Seed, so a plan
// replays the identical fault schedule on every run with the same
// operation sequence.
//
// Injected errors follow a fail-before-apply contract: when ChaosStore
// returns ErrInjectedFault the wrapped operation was NOT executed, so a
// retry can never duplicate an effect. Latency spikes and stalls delay
// the operation but still execute it.
type ChaosPlan struct {
	// Seed drives the per-operation fault lottery.
	Seed int64
	// ErrorRate is the probability (0..1) that an operation fails with a
	// transient ErrInjectedFault instead of executing.
	ErrorRate float64
	// LatencyRate is the probability (0..1) that an operation is delayed
	// by Latency before executing.
	LatencyRate float64
	// Latency is the injected delay for a latency spike.
	Latency time.Duration
	// StallEvery stalls every Nth operation for Stall before executing
	// (0 disables). Stalls model a store that stops answering: pair with
	// a per-op deadline or a run watchdog.
	StallEvery int
	// Stall is the stall duration.
	Stall time.Duration
	// OutageAfterOps starts a full outage once this many operations have
	// reached the store (0 disables): every operation in the outage
	// window fails with ErrInjectedFault without executing.
	OutageAfterOps int
	// OutageOps is the length of the outage window in operations that
	// reach the store (each failed probe advances the window).
	OutageOps int
}

// Validate rejects rates outside [0,1] and negative schedule fields.
func (p ChaosPlan) Validate() error {
	if p.ErrorRate < 0 || p.ErrorRate > 1 {
		return fmt.Errorf("kv: chaos error_rate %v outside [0,1]", p.ErrorRate)
	}
	if p.LatencyRate < 0 || p.LatencyRate > 1 {
		return fmt.Errorf("kv: chaos latency_rate %v outside [0,1]", p.LatencyRate)
	}
	if p.Latency < 0 || p.Stall < 0 {
		return fmt.Errorf("kv: chaos durations must be non-negative")
	}
	if p.StallEvery < 0 || p.OutageAfterOps < 0 || p.OutageOps < 0 {
		return fmt.Errorf("kv: chaos schedule fields must be non-negative")
	}
	return nil
}

// ChaosCounters reports what a ChaosStore has injected so far.
type ChaosCounters struct {
	// Ops is the number of operations that reached the store.
	Ops uint64
	// InjectedErrors is the number of operations failed with ErrInjectedFault.
	InjectedErrors uint64
	// LatencySpikes is the number of delayed operations.
	LatencySpikes uint64
	// Stalls is the number of stalled operations.
	Stalls uint64
}

// ChaosStore wraps a Store and injects the faults of one ChaosPlan.
// It is safe for concurrent use; the fault lottery is serialized so the
// schedule stays deterministic for a deterministic operation order.
type ChaosStore struct {
	inner Store
	plan  ChaosPlan

	mu  sync.Mutex
	rng *rand.Rand
	c   ChaosCounters
}

var _ Store = (*ChaosStore)(nil)

// NewChaosStore wraps inner with plan. It panics on an invalid plan
// (callers should Validate first when the plan comes from user input).
func NewChaosStore(inner Store, plan ChaosPlan) *ChaosStore {
	if err := plan.Validate(); err != nil {
		panic(err)
	}
	return &ChaosStore{inner: inner, plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// Counters returns a snapshot of the injection counters.
func (s *ChaosStore) Counters() ChaosCounters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c
}

// Metrics implements Introspector: the injection counters under
// "chaos.*", merged over the wrapped store's metrics.
func (s *ChaosStore) Metrics() map[string]int64 {
	c := s.Counters()
	return mergeMetrics(map[string]int64{
		"chaos.ops":             int64(c.Ops),
		"chaos.injected_errors": int64(c.InjectedErrors),
		"chaos.latency_spikes":  int64(c.LatencySpikes),
		"chaos.stalls":          int64(c.Stalls),
	}, MetricsOf(s.inner))
}

// Inner returns the wrapped store.
func (s *ChaosStore) Inner() Store { return s.inner }

// Caps delegates to the wrapped store.
func (s *ChaosStore) Caps() Capabilities { return CapsOf(s.inner) }

// before runs the fault lottery for one operation. It returns a non-nil
// error when the operation must fail without executing, and otherwise a
// delay to impose before executing.
func (s *ChaosStore) before() (time.Duration, error) {
	s.mu.Lock()
	s.c.Ops++
	op := s.c.Ops
	if s.plan.OutageAfterOps > 0 && op > uint64(s.plan.OutageAfterOps) &&
		op <= uint64(s.plan.OutageAfterOps+s.plan.OutageOps) {
		s.c.InjectedErrors++
		s.mu.Unlock()
		return 0, ErrInjectedFault
	}
	if s.plan.ErrorRate > 0 && s.rng.Float64() < s.plan.ErrorRate {
		s.c.InjectedErrors++
		s.mu.Unlock()
		return 0, ErrInjectedFault
	}
	var delay time.Duration
	if s.plan.StallEvery > 0 && op%uint64(s.plan.StallEvery) == 0 {
		s.c.Stalls++
		delay += s.plan.Stall
	}
	if s.plan.LatencyRate > 0 && s.rng.Float64() < s.plan.LatencyRate {
		s.c.LatencySpikes++
		delay += s.plan.Latency
	}
	s.mu.Unlock()
	return delay, nil
}

func (s *ChaosStore) admit() error {
	delay, err := s.before()
	if err != nil {
		return err
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	return nil
}

// Get implements Store.
func (s *ChaosStore) Get(key []byte) ([]byte, error) {
	if err := s.admit(); err != nil {
		return nil, err
	}
	return s.inner.Get(key)
}

// Put implements Store.
func (s *ChaosStore) Put(key, value []byte) error {
	if err := s.admit(); err != nil {
		return err
	}
	return s.inner.Put(key, value)
}

// Merge implements Store.
func (s *ChaosStore) Merge(key, operand []byte) error {
	if err := s.admit(); err != nil {
		return err
	}
	return s.inner.Merge(key, operand)
}

// Delete implements Store.
func (s *ChaosStore) Delete(key []byte) error {
	if err := s.admit(); err != nil {
		return err
	}
	return s.inner.Delete(key)
}

// ScanRange implements RangeScanner when the wrapped store supports
// scans: the admission lottery charges the scan as one operation, then
// delegates.
func (s *ChaosStore) ScanRange(lo, hi StateKey) ([]Entry, error) {
	if err := s.admit(); err != nil {
		return nil, err
	}
	return ScanRange(s.inner, lo, hi)
}

// Snapshot implements Snapshotter when the wrapped store does. Acquiring
// the snapshot runs the fault lottery once; afterwards every iterator
// step runs it again, so a long drain through a chaotic store can fail
// mid-scan with ErrInjectedFault — exactly the partial-failure mode a
// resilience layer above has to absorb.
func (s *ChaosStore) Snapshot() (Snapshot, error) {
	if err := s.admit(); err != nil {
		return nil, err
	}
	snap, err := SnapshotOf(s.inner)
	if err != nil {
		return nil, err
	}
	return &chaosSnapshot{s: s, inner: snap}, nil
}

type chaosSnapshot struct {
	s     *ChaosStore
	inner Snapshot
}

func (cs *chaosSnapshot) Get(key []byte) ([]byte, error) {
	if err := cs.s.admit(); err != nil {
		return nil, err
	}
	return cs.inner.Get(key)
}

func (cs *chaosSnapshot) Iter(lo, hi StateKey) Iterator {
	return &chaosIterator{s: cs.s, inner: cs.inner.Iter(lo, hi)}
}

func (cs *chaosSnapshot) Close() error { return cs.inner.Close() }

// chaosIterator charges each step to the fault lottery. An injected
// fault surfaces through Err() and terminates the iteration; the
// underlying iterator is left where it was (fail-before-apply: the next
// entry was not consumed).
type chaosIterator struct {
	s     *ChaosStore
	inner Iterator
	err   error
}

func (it *chaosIterator) Next() bool {
	if it.err != nil {
		return false
	}
	if err := it.s.admit(); err != nil {
		it.err = err
		return false
	}
	return it.inner.Next()
}

func (it *chaosIterator) Key() StateKey { return it.inner.Key() }
func (it *chaosIterator) Value() []byte { return it.inner.Value() }
func (it *chaosIterator) Err() error {
	if it.err != nil {
		return it.err
	}
	return it.inner.Err()
}
func (it *chaosIterator) Close() error { return it.inner.Close() }

// Close closes the wrapped store (never injected).
func (s *ChaosStore) Close() error { return s.inner.Close() }
