// Checkpoint codec and Checkpointer: engine-agnostic, portable state
// snapshots for mid-run crash recovery.
//
// A checkpoint is a length-prefixed key/value stream with a checksummed
// footer:
//
//	header:  "GCKP" | version byte | engine (uvarint len + bytes) | watermark uvarint
//	entry:   tag 1  | key (KeyLen bytes) | value (uvarint len + bytes)
//	footer:  tag 0  | entries u64 | watermark u64 | crc32c of all preceding bytes
//
// The watermark is the number of trace operations applied to the store
// when the snapshot was taken; recovery rewinds the trace cursor to it
// and replays the delta. The format is written from a kv.Snapshot and
// restored with plain Puts, so any engine can save it and any engine can
// load it — checkpoints taken on rocksdb restore into faster, etc. The
// LSM engines additionally have a native fast path (lsm.(*DB).CheckpointTo)
// that hard-links immutable SSTs instead of streaming, but the portable
// format is what the recovery runner uses: it is the only one every
// engine can both produce and consume.
package kv

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"strings"

	"gadget/internal/vfs"
)

const (
	checkpointMagic   = "GCKP"
	checkpointVersion = 1

	tagEntry  = 1
	tagFooter = 0

	// CheckpointSuffix names checkpoint files; the %016x watermark prefix
	// makes lexicographic order equal watermark order.
	CheckpointSuffix = ".gckp"
	checkpointPrefix = "checkpoint-"
)

// ErrCheckpointCorrupt reports a checkpoint that failed validation —
// bad magic, truncated stream, or checksum mismatch. Recovery treats it
// as "this checkpoint does not exist" and falls back to an older one.
var ErrCheckpointCorrupt = errors.New("kv: corrupt checkpoint")

var checkpointCRC = crc32.MakeTable(crc32.Castagnoli)

// CheckpointMeta describes one checkpoint.
type CheckpointMeta struct {
	Engine    string // engine that produced it (provenance only)
	Watermark uint64 // trace ops applied when the snapshot was taken
	Entries   uint64 // live keys in the checkpoint
}

// crcWriter tracks a running crc32c and byte count over everything
// written through it.
type crcWriter struct {
	w   io.Writer
	crc uint32
	n   int64
	err error
}

func (cw *crcWriter) write(p []byte) {
	if cw.err != nil {
		return
	}
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, checkpointCRC, p[:n])
	cw.n += int64(n)
	cw.err = err
}

// WriteCheckpoint streams the entries of it to w in checkpoint format.
// The iterator must yield keys in ascending order (any Snapshot.Iter
// does); order is not validated, but restores replay entries as Puts so
// order only matters for reproducible byte-identical files.
func WriteCheckpoint(w io.Writer, engine string, watermark uint64, it Iterator) (CheckpointMeta, int64, error) {
	bw := bufio.NewWriterSize(w, 64<<10)
	cw := &crcWriter{w: bw}
	var buf [2 * binary.MaxVarintLen64]byte

	cw.write([]byte(checkpointMagic))
	cw.write([]byte{checkpointVersion})
	n := binary.PutUvarint(buf[:], uint64(len(engine)))
	cw.write(buf[:n])
	cw.write([]byte(engine))
	n = binary.PutUvarint(buf[:], watermark)
	cw.write(buf[:n])

	var entries uint64
	for it.Next() {
		cw.write([]byte{tagEntry})
		cw.write(it.Key().Bytes())
		v := it.Value()
		n = binary.PutUvarint(buf[:], uint64(len(v)))
		cw.write(buf[:n])
		cw.write(v)
		entries++
	}
	if err := it.Err(); err != nil {
		return CheckpointMeta{}, cw.n, err
	}

	var footer [1 + 8 + 8]byte
	footer[0] = tagFooter
	binary.LittleEndian.PutUint64(footer[1:], entries)
	binary.LittleEndian.PutUint64(footer[9:], watermark)
	cw.write(footer[:])
	// The crc covers everything before it, including the footer body.
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], cw.crc)
	cw.write(crc[:])
	if cw.err != nil {
		return CheckpointMeta{}, cw.n, cw.err
	}
	if err := bw.Flush(); err != nil {
		return CheckpointMeta{}, cw.n, err
	}
	return CheckpointMeta{Engine: engine, Watermark: watermark, Entries: entries}, cw.n, nil
}

// ReadCheckpoint parses and validates a full checkpoint. Entries are
// materialized and returned only after the checksum and footer check
// out, so a caller never applies half of a corrupt checkpoint. Any
// malformation — short read, bad tag, count or watermark mismatch, crc
// mismatch, trailing garbage — yields ErrCheckpointCorrupt.
func ReadCheckpoint(r io.Reader) (CheckpointMeta, []Entry, error) {
	data, err := io.ReadAll(bufio.NewReaderSize(r, 64<<10))
	if err != nil {
		return CheckpointMeta{}, nil, err
	}
	corrupt := func(why string) (CheckpointMeta, []Entry, error) {
		return CheckpointMeta{}, nil, fmt.Errorf("%w: %s", ErrCheckpointCorrupt, why)
	}
	if len(data) < len(checkpointMagic)+1+4 {
		return corrupt("truncated header")
	}
	if string(data[:4]) != checkpointMagic {
		return corrupt("bad magic")
	}
	if data[4] != checkpointVersion {
		return corrupt(fmt.Sprintf("unsupported version %d", data[4]))
	}
	// Validate the trailing crc before parsing anything else: it covers
	// the whole file up to itself.
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, checkpointCRC) != binary.LittleEndian.Uint32(tail) {
		return corrupt("checksum mismatch")
	}

	pos := 5
	readUvarint := func() (uint64, bool) {
		v, n := binary.Uvarint(body[pos:])
		if n <= 0 {
			return 0, false
		}
		pos += n
		return v, true
	}
	engLen, ok := readUvarint()
	if !ok || uint64(len(body)-pos) < engLen {
		return corrupt("truncated engine name")
	}
	meta := CheckpointMeta{Engine: string(body[pos : pos+int(engLen)])}
	pos += int(engLen)
	if meta.Watermark, ok = readUvarint(); !ok {
		return corrupt("truncated watermark")
	}

	var entries []Entry
	for {
		if pos >= len(body) {
			return corrupt("missing footer")
		}
		tag := body[pos]
		pos++
		if tag == tagFooter {
			break
		}
		if tag != tagEntry {
			return corrupt(fmt.Sprintf("unknown record tag %d", tag))
		}
		if len(body)-pos < KeyLen {
			return corrupt("truncated key")
		}
		key, err := DecodeStateKey(body[pos : pos+KeyLen])
		if err != nil {
			return corrupt(err.Error())
		}
		pos += KeyLen
		vlen, ok := readUvarint()
		if !ok || uint64(len(body)-pos) < vlen {
			return corrupt("truncated value")
		}
		val := make([]byte, vlen)
		copy(val, body[pos:pos+int(vlen)])
		pos += int(vlen)
		entries = append(entries, Entry{Key: key, Value: val})
	}
	if len(body)-pos != 16 {
		return corrupt("truncated footer")
	}
	if got := binary.LittleEndian.Uint64(body[pos:]); got != uint64(len(entries)) {
		return corrupt(fmt.Sprintf("footer entry count %d, stream has %d", got, len(entries)))
	}
	if got := binary.LittleEndian.Uint64(body[pos+8:]); got != meta.Watermark {
		return corrupt("footer watermark disagrees with header")
	}
	meta.Entries = uint64(len(entries))
	return meta, entries, nil
}

// Checkpointer saves and restores portable checkpoints in a directory.
// The zero Dir is invalid; a nil FS means the real filesystem.
type Checkpointer struct {
	FS     vfs.FS
	Dir    string
	Engine string // stamped into saved checkpoints
	// Keep bounds how many checkpoints are retained; older ones are
	// deleted after each successful Save. Zero means KeepDefault. At
	// least 2 are kept so corruption of the newest can fall back.
	Keep int
}

// KeepDefault is the checkpoint retention used when Keep is zero.
const KeepDefault = 2

func (c *Checkpointer) fs() vfs.FS { return vfs.OrDefault(c.FS) }

func checkpointName(watermark uint64) string {
	return fmt.Sprintf("%s%016x%s", checkpointPrefix, watermark, CheckpointSuffix)
}

// Save snapshots s (via SnapshotOf, so every engine works) and writes a
// checkpoint at the given watermark. It commits with the full
// sync-rename-syncdir protocol and then prunes old checkpoints.
func (c *Checkpointer) Save(s Store, watermark uint64) (CheckpointMeta, int64, error) {
	snap, err := SnapshotOf(s)
	if err != nil {
		return CheckpointMeta{}, 0, err
	}
	defer snap.Close()
	it := snap.Iter(StateKey{}, MaxStateKey)
	defer it.Close()

	fsys := c.fs()
	if err := fsys.MkdirAll(c.Dir, 0o755); err != nil {
		return CheckpointMeta{}, 0, err
	}
	final := joinPath(c.Dir, checkpointName(watermark))
	tmp := final + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return CheckpointMeta{}, 0, err
	}
	meta, bytes, err := WriteCheckpoint(f, c.Engine, watermark, it)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fsys.Remove(tmp)
		return CheckpointMeta{}, bytes, err
	}
	if err := fsys.Rename(tmp, final); err != nil {
		fsys.Remove(tmp)
		return CheckpointMeta{}, bytes, err
	}
	if err := fsys.SyncDir(c.Dir); err != nil {
		return CheckpointMeta{}, bytes, err
	}
	c.prune()
	return meta, bytes, nil
}

// prune deletes all but the newest Keep checkpoints. Best effort:
// pruning failures never fail a Save.
func (c *Checkpointer) prune() {
	keep := c.Keep
	if keep <= 0 {
		keep = KeepDefault
	}
	if keep < 2 {
		keep = 2
	}
	names := c.list()
	for i := 0; i < len(names)-keep; i++ {
		c.fs().Remove(joinPath(c.Dir, names[i]))
	}
}

// list returns checkpoint file names sorted oldest first.
func (c *Checkpointer) list() []string {
	ents, err := c.fs().ReadDir(c.Dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if strings.HasPrefix(name, checkpointPrefix) && strings.HasSuffix(name, CheckpointSuffix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// RestoreInfo reports what a Restore did.
type RestoreInfo struct {
	Meta           CheckpointMeta
	Path           string // file restored from; empty if none was usable
	CorruptSkipped int    // newer checkpoints rejected as corrupt
}

// Restore loads the newest valid checkpoint into s (which should be
// freshly opened and empty) with plain Puts. Corrupt or truncated
// checkpoints are skipped in favor of older ones. Finding no usable
// checkpoint is not an error: the zero watermark tells the caller to
// replay the trace from the beginning.
func (c *Checkpointer) Restore(s Store) (RestoreInfo, error) {
	var info RestoreInfo
	names := c.list()
	for i := len(names) - 1; i >= 0; i-- {
		path := joinPath(c.Dir, names[i])
		meta, entries, err := c.readOne(path)
		if err != nil {
			if errors.Is(err, ErrCheckpointCorrupt) {
				info.CorruptSkipped++
				continue
			}
			return info, err
		}
		keyBuf := make([]byte, 0, KeyLen)
		for _, e := range entries {
			if err := s.Put(e.Key.Encode(keyBuf[:0]), e.Value); err != nil {
				return info, fmt.Errorf("kv: restoring %s: %w", path, err)
			}
		}
		info.Meta = meta
		info.Path = path
		return info, nil
	}
	return info, nil
}

func (c *Checkpointer) readOne(path string) (CheckpointMeta, []Entry, error) {
	f, err := vfs.Open(c.fs(), path)
	if err != nil {
		// A listed-but-unopenable file is as good as corrupt.
		return CheckpointMeta{}, nil, fmt.Errorf("%w: %v", ErrCheckpointCorrupt, err)
	}
	defer f.Close()
	return ReadCheckpoint(f)
}

// joinPath joins dir and name with a forward slash, the separator every
// vfs implementation accepts.
func joinPath(dir, name string) string {
	if dir == "" || strings.HasSuffix(dir, "/") {
		return dir + name
	}
	return dir + "/" + name
}
