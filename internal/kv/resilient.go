package kv

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ResilienceOptions configures a ResilientStore. The zero value enables
// retries with the default budget and backoff but no per-op deadline and
// the default breaker; fields set to -1 disable the corresponding
// mechanism where noted.
type ResilienceOptions struct {
	// OpTimeout is the per-operation deadline (0 = none). An attempt that
	// exceeds it fails with ErrDeadlineExceeded; the in-flight call is
	// abandoned (it may still complete against the underlying store, so
	// the outcome is unknown and merges are not retried past it).
	OpTimeout time.Duration
	// MaxRetries bounds retry attempts after the first try
	// (0 = default 3, -1 = no retries).
	MaxRetries int
	// BackoffBase is the first retry delay; each further retry doubles it
	// (0 = default 100µs).
	BackoffBase time.Duration
	// BackoffMax caps the retry delay (0 = default 20ms).
	BackoffMax time.Duration
	// JitterSeed seeds the ±50% backoff jitter, keeping schedules
	// reproducible across runs.
	JitterSeed int64
	// BreakerThreshold is the number of consecutive failed operations
	// that opens the circuit breaker (0 = default 16, -1 = breaker
	// disabled). While open, operations fail fast with ErrBreakerOpen
	// until BreakerCooldown elapses; then a single half-open probe is
	// admitted, and its outcome closes or re-opens the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before probing
	// (0 = default 50ms).
	BreakerCooldown time.Duration
}

// Defaults applied by NewResilientStore for zero-valued options.
const (
	defaultMaxRetries       = 3
	defaultBackoffBase      = 100 * time.Microsecond
	defaultBackoffMax       = 20 * time.Millisecond
	defaultBreakerThreshold = 16
	defaultBreakerCooldown  = 50 * time.Millisecond
)

// Validate rejects nonsensical option values (anything below the -1
// disable sentinels or negative durations).
func (o ResilienceOptions) Validate() error {
	if o.OpTimeout < 0 {
		return fmt.Errorf("kv: resilience op_timeout must be non-negative, got %v", o.OpTimeout)
	}
	if o.MaxRetries < -1 {
		return fmt.Errorf("kv: resilience max_retries must be >= -1, got %d", o.MaxRetries)
	}
	if o.BackoffBase < 0 || o.BackoffMax < 0 {
		return fmt.Errorf("kv: resilience backoff durations must be non-negative")
	}
	if o.BreakerThreshold < -1 {
		return fmt.Errorf("kv: resilience breaker_threshold must be >= -1, got %d", o.BreakerThreshold)
	}
	if o.BreakerCooldown < 0 {
		return fmt.Errorf("kv: resilience breaker_cooldown must be non-negative, got %v", o.BreakerCooldown)
	}
	return nil
}

func (o ResilienceOptions) withDefaults() ResilienceOptions {
	if o.MaxRetries == 0 {
		o.MaxRetries = defaultMaxRetries
	}
	if o.BackoffBase == 0 {
		o.BackoffBase = defaultBackoffBase
	}
	if o.BackoffMax == 0 {
		o.BackoffMax = defaultBackoffMax
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = defaultBreakerThreshold
	}
	if o.BreakerCooldown == 0 {
		o.BreakerCooldown = defaultBreakerCooldown
	}
	return o
}

// breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// ResilientStore wraps a Store with per-operation deadlines, bounded
// retry with exponential backoff and jitter, and a circuit breaker with
// half-open probing. Retries obey RetrySafe: only transient errors are
// retried, and Merge is never retried past an outcome-unknown failure.
// It is safe for concurrent use.
type ResilientStore struct {
	inner Store
	opts  ResilienceOptions
	// slowAlways forces the full pipeline for every op (set when a per-op
	// deadline is configured, since that needs the attempt goroutine).
	slowAlways bool

	retries      atomic.Uint64
	timeouts     atomic.Uint64
	breakerTrips atomic.Uint64
	fastFails    atomic.Uint64
	degraded     atomic.Uint64

	jmu sync.Mutex
	rng *rand.Rand

	// Breaker state: written only under bmu, read lock-free on the fast
	// path (state and consecFails are atomics for that reason).
	bmu         sync.Mutex
	state       atomic.Int32
	consecFails atomic.Int32
	openedAt    time.Time
	probing     bool
}

var (
	_ Store              = (*ResilientStore)(nil)
	_ ResilienceReporter = (*ResilientStore)(nil)
)

// NewResilientStore wraps inner with opts (validated, then defaulted).
func NewResilientStore(inner Store, opts ResilienceOptions) (*ResilientStore, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	return &ResilientStore{
		inner:      inner,
		opts:       o,
		slowAlways: o.OpTimeout > 0,
		rng:        rand.New(rand.NewSource(o.JitterSeed)),
	}, nil
}

// fastOK reports whether an op may skip the resilience pipeline: no
// per-op deadline, breaker closed, and no failure streak in progress.
// In that state a successful first attempt needs no bookkeeping at all,
// which keeps the happy-path overhead to two atomic loads.
func (r *ResilientStore) fastOK() bool {
	return !r.slowAlways && r.state.Load() == breakerClosed && r.consecFails.Load() == 0
}

// ResilienceCounters implements ResilienceReporter.
func (r *ResilientStore) ResilienceCounters() ResilienceCounters {
	return ResilienceCounters{
		Retries:      r.retries.Load(),
		Timeouts:     r.timeouts.Load(),
		BreakerTrips: r.breakerTrips.Load(),
		FastFails:    r.fastFails.Load(),
		Degraded:     r.degraded.Load(),
	}
}

// Metrics implements Introspector: the resilience counters under
// "resilient.*" plus the live breaker state (0 closed, 1 open, 2
// half-open), merged over the wrapped store's metrics.
func (r *ResilientStore) Metrics() map[string]int64 {
	c := r.ResilienceCounters()
	return mergeMetrics(map[string]int64{
		"resilient.retries":       int64(c.Retries),
		"resilient.timeouts":      int64(c.Timeouts),
		"resilient.breaker_trips": int64(c.BreakerTrips),
		"resilient.fast_fails":    int64(c.FastFails),
		"resilient.degraded_ops":  int64(c.Degraded),
		"resilient.breaker_state": int64(r.state.Load()),
	}, MetricsOf(r.inner))
}

// Inner returns the wrapped store.
func (r *ResilientStore) Inner() Store { return r.inner }

// Caps delegates to the wrapped store.
func (r *ResilientStore) Caps() Capabilities { return CapsOf(r.inner) }

// allow consults the breaker before an attempt. It returns ErrBreakerOpen
// (transient: the store may recover) when the attempt must fail fast, and
// otherwise reports whether this attempt is the half-open probe.
func (r *ResilientStore) allow() (probe bool, err error) {
	if r.opts.BreakerThreshold < 0 {
		return false, nil
	}
	r.bmu.Lock()
	defer r.bmu.Unlock()
	switch r.state.Load() {
	case breakerClosed:
		return false, nil
	case breakerOpen:
		if time.Since(r.openedAt) >= r.opts.BreakerCooldown {
			r.state.Store(breakerHalfOpen)
			r.probing = true
			return true, nil
		}
	case breakerHalfOpen:
		if !r.probing {
			r.probing = true
			return true, nil
		}
	}
	r.fastFails.Add(1)
	return false, ErrBreakerOpen
}

// record feeds an attempt's outcome back into the breaker.
func (r *ResilientStore) record(ok, probe bool) {
	if r.opts.BreakerThreshold < 0 {
		return
	}
	r.bmu.Lock()
	defer r.bmu.Unlock()
	if probe {
		r.probing = false
	}
	if ok {
		r.state.Store(breakerClosed)
		r.consecFails.Store(0)
		return
	}
	fails := r.consecFails.Add(1)
	if r.state.Load() == breakerHalfOpen || int(fails) >= r.opts.BreakerThreshold {
		if r.state.Load() != breakerOpen {
			r.breakerTrips.Add(1)
		}
		r.state.Store(breakerOpen)
		r.openedAt = time.Now()
		r.consecFails.Store(0)
	}
}

// backoff returns the jittered delay before retry attempt n (1-based).
func (r *ResilientStore) backoff(n int) time.Duration {
	d := r.opts.BackoffBase << uint(n-1)
	if d > r.opts.BackoffMax || d <= 0 {
		d = r.opts.BackoffMax
	}
	r.jmu.Lock()
	// ±50% jitter, deterministic under JitterSeed.
	f := 0.5 + r.rng.Float64()
	r.jmu.Unlock()
	return time.Duration(float64(d) * f)
}

type opResult struct {
	v   []byte
	err error
}

// attempt runs f, bounding it by OpTimeout when configured. On timeout
// the call is abandoned: its goroutine finishes against the buffered
// channel and its result is dropped.
func (r *ResilientStore) attempt(f func() ([]byte, error)) ([]byte, error) {
	if r.opts.OpTimeout <= 0 {
		return f()
	}
	ch := make(chan opResult, 1)
	go func() {
		v, err := f()
		ch <- opResult{v, err}
	}()
	t := time.NewTimer(r.opts.OpTimeout)
	defer t.Stop()
	select {
	case res := <-ch:
		return res.v, res.err
	case <-t.C:
		r.timeouts.Add(1)
		return nil, fmt.Errorf("%w after %v", ErrDeadlineExceeded, r.opts.OpTimeout)
	}
}

// do runs f with the full resilience pipeline for operation type op.
func (r *ResilientStore) do(op Op, f func() ([]byte, error)) ([]byte, error) {
	attempts := 1 + r.opts.MaxRetries
	if attempts < 1 {
		attempts = 1
	}
	var v []byte
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if !RetrySafe(op, err) {
				break
			}
			r.retries.Add(1)
			time.Sleep(r.backoff(i))
		}
		probe, allowErr := r.allow()
		if allowErr != nil {
			err = allowErr
			continue // the cooldown may elapse during the next backoff
		}
		v, err = r.attempt(f)
		// Contract outcomes (miss, unsupported merge) are successes as far
		// as the breaker and retry budget are concerned.
		ok := err == nil || errors.Is(err, ErrNotFound) || errors.Is(err, ErrMergeUnsupported)
		r.record(ok, probe)
		if ok {
			return v, err
		}
	}
	r.degraded.Add(1)
	return nil, err
}

// doRetry continues the pipeline after a failed fast-path first attempt:
// it records that failure with the breaker, then runs the remaining
// retry budget exactly as do would.
func (r *ResilientStore) doRetry(op Op, err error, f func() ([]byte, error)) ([]byte, error) {
	r.record(false, false)
	attempts := 1 + r.opts.MaxRetries
	var v []byte
	for i := 1; i < attempts; i++ {
		if !RetrySafe(op, err) {
			break
		}
		r.retries.Add(1)
		time.Sleep(r.backoff(i))
		probe, allowErr := r.allow()
		if allowErr != nil {
			err = allowErr
			continue
		}
		v, err = r.attempt(f)
		ok := err == nil || errors.Is(err, ErrNotFound) || errors.Is(err, ErrMergeUnsupported)
		r.record(ok, probe)
		if ok {
			return v, err
		}
	}
	r.degraded.Add(1)
	return nil, err
}

// Get implements Store.
func (r *ResilientStore) Get(key []byte) ([]byte, error) {
	if r.fastOK() {
		v, err := r.inner.Get(key)
		if err == nil || errors.Is(err, ErrNotFound) {
			return v, err
		}
		return r.doRetry(OpGet, err, func() ([]byte, error) { return r.inner.Get(key) })
	}
	return r.do(OpGet, func() ([]byte, error) { return r.inner.Get(key) })
}

// Put implements Store.
func (r *ResilientStore) Put(key, value []byte) error {
	if r.fastOK() {
		err := r.inner.Put(key, value)
		if err == nil {
			return nil
		}
		_, err = r.doRetry(OpPut, err, func() ([]byte, error) { return nil, r.inner.Put(key, value) })
		return err
	}
	_, err := r.do(OpPut, func() ([]byte, error) { return nil, r.inner.Put(key, value) })
	return err
}

// Merge implements Store. A merge is retried only while RetrySafe holds:
// after an outcome-unknown failure (deadline, lost connection) the error
// surfaces instead, because replaying the operand could duplicate it.
func (r *ResilientStore) Merge(key, operand []byte) error {
	if r.fastOK() {
		err := r.inner.Merge(key, operand)
		if err == nil || errors.Is(err, ErrMergeUnsupported) {
			return err
		}
		_, err = r.doRetry(OpMerge, err, func() ([]byte, error) { return nil, r.inner.Merge(key, operand) })
		return err
	}
	_, err := r.do(OpMerge, func() ([]byte, error) { return nil, r.inner.Merge(key, operand) })
	return err
}

// Delete implements Store.
func (r *ResilientStore) Delete(key []byte) error {
	if r.fastOK() {
		err := r.inner.Delete(key)
		if err == nil || errors.Is(err, ErrNotFound) {
			return err
		}
		_, err = r.doRetry(OpDelete, err, func() ([]byte, error) { return nil, r.inner.Delete(key) })
		return err
	}
	_, err := r.do(OpDelete, func() ([]byte, error) { return nil, r.inner.Delete(key) })
	return err
}

// ScanRange implements RangeScanner with the full pipeline: scans are
// reads, so transient failures retry safely under the OpScan budget.
// The result is published under a mutex because a timed-out attempt is
// abandoned, not cancelled — it may still complete and write late.
func (r *ResilientStore) ScanRange(lo, hi StateKey) ([]Entry, error) {
	var mu sync.Mutex
	var out []Entry
	f := func() ([]byte, error) {
		ents, err := ScanRange(r.inner, lo, hi)
		if err == nil {
			mu.Lock()
			if out == nil {
				out = ents
			}
			mu.Unlock()
		}
		return nil, err
	}
	var err error
	if r.fastOK() {
		if _, err = f(); err == nil {
			return out, nil
		}
		_, err = r.doRetry(OpScan, err, f)
	} else {
		_, err = r.do(OpScan, f)
	}
	if err != nil {
		return nil, err
	}
	mu.Lock()
	defer mu.Unlock()
	return out, nil
}

// Snapshot implements Snapshotter, bounding acquisition with the per-op
// deadline and retrying transient failures under the OpScan budget. The
// returned snapshot itself is the inner store's: iteration over it is
// not deadline-bounded (a drain's pacing belongs to the caller). A
// snapshot acquired by an abandoned late attempt is closed, never
// leaked; the first successful acquisition wins.
func (r *ResilientStore) Snapshot() (snap Snapshot, retErr error) {
	var mu sync.Mutex
	var won Snapshot
	failed := false
	f := func() ([]byte, error) {
		sn, err := SnapshotOf(r.inner)
		if err == nil {
			mu.Lock()
			if failed || won != nil {
				mu.Unlock()
				sn.Close()
				return nil, nil
			}
			won = sn
			mu.Unlock()
		}
		return nil, err
	}
	var err error
	if r.fastOK() {
		if _, err = f(); err != nil {
			_, err = r.doRetry(OpScan, err, f)
		}
	} else {
		_, err = r.do(OpScan, f)
	}
	mu.Lock()
	defer mu.Unlock()
	if err != nil && won == nil {
		// Tell any still-running abandoned attempt to close what it gets.
		failed = true
		return nil, err
	}
	return won, nil
}

// Close closes the wrapped store directly (no retries, no deadline).
func (r *ResilientStore) Close() error { return r.inner.Close() }
