package kv

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"gadget/internal/tracing"
)

// TracedOp describes one operation dispatched down the traced path: a
// uniform envelope so a single optional interface method covers the
// whole Store vocabulary.
type TracedOp struct {
	// Op selects the operation.
	Op Op
	// Key is the encoded key for point operations.
	Key []byte
	// Val is the value (OpPut) or merge operand (OpMerge).
	Val []byte
	// Lo, Hi are the scan bounds for OpScan.
	Lo, Hi StateKey
}

// TracedResult carries the result of a traced operation: Val for point
// reads, Entries for scans.
type TracedResult struct {
	Val     []byte
	Entries []Entry
}

// Traceable is the optional traced fast path: stores (engines,
// middleware, remote clients) that can attribute internal phases to a
// tracing.Ctx implement it. DoTraced is called with a non-nil Ctx and
// must behave exactly like the corresponding plain Store call, plus
// stamping the stages the layer adds. Implementations that wrap an
// inner store delegate with DoTraced(inner, tc, op) so attribution
// composes through middleware stacks.
type Traceable interface {
	DoTraced(tc *tracing.Ctx, op TracedOp) (TracedResult, error)
}

// DoTraced dispatches op against s. With a nil Ctx it runs the plain
// Store call (zero tracing cost). With a non-nil Ctx it takes s's
// Traceable path when implemented; otherwise it times the plain call
// and attributes the whole inner duration to StageEngine, so opaque
// leaves (memstore, the v2 client, ...) still account in the stage sum.
func DoTraced(s Store, tc *tracing.Ctx, op TracedOp) (TracedResult, error) {
	if tc == nil {
		return applyPlain(s, op)
	}
	if t, ok := s.(Traceable); ok {
		return t.DoTraced(tc, op)
	}
	t0 := tc.Now()
	res, err := applyPlain(s, op)
	tc.AddSince(tracing.StageEngine, t0)
	return res, err
}

// applyPlain runs op through the plain Store interface.
func applyPlain(s Store, op TracedOp) (TracedResult, error) {
	switch op.Op {
	case OpGet, OpFGet:
		v, err := s.Get(op.Key)
		return TracedResult{Val: v}, err
	case OpPut:
		return TracedResult{}, s.Put(op.Key, op.Val)
	case OpMerge:
		return TracedResult{}, s.Merge(op.Key, op.Val)
	case OpDelete:
		return TracedResult{}, s.Delete(op.Key)
	case OpScan:
		ents, err := ScanRange(s, op.Lo, op.Hi)
		return TracedResult{Entries: ents}, err
	default:
		return TracedResult{}, fmt.Errorf("kv: traced dispatch: unsupported op %v", op.Op)
	}
}

// contractOK reports whether err is a contract outcome (success, miss,
// unsupported merge) rather than a failure, matching the retry/breaker
// accounting of the plain resilient path.
func contractOK(err error) bool {
	return err == nil || errors.Is(err, ErrNotFound) || errors.Is(err, ErrMergeUnsupported)
}

// DoTraced implements Traceable for the chaos wrapper: the injected
// delay is stamped as StageChaos, then the op descends to the inner
// store's traced path. Injected errors fail before the inner call,
// exactly like the plain path.
func (s *ChaosStore) DoTraced(tc *tracing.Ctx, op TracedOp) (TracedResult, error) {
	delay, err := s.before()
	if err != nil {
		return TracedResult{}, err
	}
	if delay > 0 {
		tc.Add(tracing.StageChaos, int64(delay))
		time.Sleep(delay)
	}
	return DoTraced(s.inner, tc, op)
}

var _ Traceable = (*ChaosStore)(nil)

// DoTraced implements Traceable for the resilient wrapper, mirroring
// the plain fast-path/pipeline split: backoff sleeps are stamped as
// StageRetry and each retry bumps the Ctx attempt counter.
func (r *ResilientStore) DoTraced(tc *tracing.Ctx, op TracedOp) (TracedResult, error) {
	if r.fastOK() {
		res, err := DoTraced(r.inner, tc, op)
		if contractOK(err) {
			return res, err
		}
		return r.doTracedFrom(tc, op, err, 1)
	}
	return r.doTraced(tc, op)
}

var _ Traceable = (*ResilientStore)(nil)

// doTraced runs the full traced resilience pipeline (the traced twin of
// do).
func (r *ResilientStore) doTraced(tc *tracing.Ctx, op TracedOp) (TracedResult, error) {
	attempts := 1 + r.opts.MaxRetries
	if attempts < 1 {
		attempts = 1
	}
	var res TracedResult
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if !RetrySafe(op.Op, err) {
				break
			}
			r.retries.Add(1)
			tc.Attempt()
			d := r.backoff(i)
			tc.Add(tracing.StageRetry, int64(d))
			time.Sleep(d)
		}
		probe, allowErr := r.allow()
		if allowErr != nil {
			err = allowErr
			continue
		}
		res, err = r.tracedAttempt(tc, op)
		ok := contractOK(err)
		r.record(ok, probe)
		if ok {
			return res, err
		}
	}
	r.degraded.Add(1)
	return TracedResult{}, err
}

// doTracedFrom continues the traced pipeline after a failed fast-path
// first attempt (the traced twin of doRetry). from is the index of the
// next attempt.
func (r *ResilientStore) doTracedFrom(tc *tracing.Ctx, op TracedOp, err error, from int) (TracedResult, error) {
	r.record(false, false)
	attempts := 1 + r.opts.MaxRetries
	var res TracedResult
	for i := from; i < attempts; i++ {
		if !RetrySafe(op.Op, err) {
			break
		}
		r.retries.Add(1)
		tc.Attempt()
		d := r.backoff(i)
		tc.Add(tracing.StageRetry, int64(d))
		time.Sleep(d)
		probe, allowErr := r.allow()
		if allowErr != nil {
			err = allowErr
			continue
		}
		res, err = r.tracedAttempt(tc, op)
		ok := contractOK(err)
		r.record(ok, probe)
		if ok {
			return res, err
		}
	}
	r.degraded.Add(1)
	return TracedResult{}, err
}

// tracedAttempt runs one attempt. Without a per-op deadline the inner
// traced path runs in the caller's goroutine. With one, the attempt may
// be abandoned mid-flight, so the Ctx must not cross into the attempt
// goroutine — an abandoned attempt stamping a pooled Ctx after Finish
// would corrupt a reused trace. Instead the whole attempt is timed from
// the parent and charged to StageEngine (the inner breakdown is lost
// under OpTimeout; the stage sum stays intact).
func (r *ResilientStore) tracedAttempt(tc *tracing.Ctx, op TracedOp) (TracedResult, error) {
	if r.opts.OpTimeout <= 0 {
		return DoTraced(r.inner, tc, op)
	}
	var mu sync.Mutex
	var res TracedResult
	t0 := tc.Now()
	_, err := r.attempt(func() ([]byte, error) {
		inner, err := DoTraced(r.inner, nil, op)
		if err == nil {
			mu.Lock()
			if res.Val == nil && res.Entries == nil {
				res = inner
			}
			mu.Unlock()
		}
		return nil, err
	})
	tc.AddSince(tracing.StageEngine, t0)
	if err != nil {
		return TracedResult{}, err
	}
	mu.Lock()
	defer mu.Unlock()
	return res, nil
}
