package kv

// Introspector is the capability interface through which one code path
// can look inside any store. Metrics returns a flat snapshot of the
// engine's internal counters and gauges, keyed as "<engine>.<metric>"
// (e.g. "lsm.compactions", "faster.in_place_updates", "chaos.ops").
//
// The contract every implementation must honor:
//
//   - Safe to call concurrently with operations on the store; a call
//     never blocks the data path beyond a brief counter read.
//   - Keys are stable across calls so observers can compute deltas.
//   - Values keyed like counters (operations, retries, bytes written)
//     are monotone non-decreasing for the life of the store; gauge-like
//     keys (sizes, states, live-key counts) may move both ways.
//   - Wrappers (chaos, resilience, remote clients) merge the wrapped
//     store's metrics into their own map, so the outermost store
//     surfaces the whole stack.
//
// The performance evaluator snapshots Metrics around each run to report
// per-run deltas, and the observability layer republishes them on the
// /metrics endpoint.
type Introspector interface {
	Metrics() map[string]int64
}

// MetricsOf returns s's metrics snapshot, or nil when the store does not
// implement Introspector.
func MetricsOf(s Store) map[string]int64 {
	if in, ok := s.(Introspector); ok {
		return in.Metrics()
	}
	return nil
}

// MetricsDelta returns end minus base per key, for per-run deltas. Keys
// only in end are taken as grown from zero; keys only in base (a store
// that stopped exporting one, which stable implementations never do) are
// dropped. Returns nil when end is nil.
func MetricsDelta(end, base map[string]int64) map[string]int64 {
	if end == nil {
		return nil
	}
	out := make(map[string]int64, len(end))
	for k, v := range end {
		out[k] = v - base[k]
	}
	return out
}

// mergeMetrics copies src into dst (created when nil) and returns dst.
// Wrappers use it to fold the wrapped store's metrics into their own.
func mergeMetrics(dst, src map[string]int64) map[string]int64 {
	if dst == nil {
		dst = make(map[string]int64, len(src))
	}
	for k, v := range src {
		dst[k] = v
	}
	return dst
}
