package kv_test

import (
	"bytes"
	"errors"
	"sort"
	"testing"

	"gadget/internal/kv"
	"gadget/internal/memstore"
)

// FuzzIterBounds checks snapshot iteration against a model for
// arbitrary bounds — inverted ranges (lo > hi), empty ranges, and
// StateKey extremes (zero and ^0 in both fields) — over a fuzzed key
// population. The invariants: a scan never errors, yields exactly the
// live keys in [lo, hi] in ascending order, and an inverted range is
// empty, not an error.
func FuzzIterBounds(f *testing.F) {
	max := ^uint64(0)
	f.Add(uint64(0), uint64(0), max, max, []byte{1, 2, 3, 4})
	f.Add(uint64(5), uint64(9), uint64(5), uint64(3), []byte{})       // lo > hi within a group
	f.Add(uint64(7), uint64(0), uint64(2), uint64(0), []byte{0xff})   // inverted groups
	f.Add(max, max, max, max, []byte{0x80, 0xff, 0x81, 0xff, 0, 0})   // extremes
	f.Add(uint64(3), uint64(0), uint64(3), uint64(255), []byte{3, 7}) // one group
	f.Fuzz(func(t *testing.T, loG, loS, hiG, hiS uint64, data []byte) {
		lo := kv.StateKey{Group: loG, Sub: loS}
		hi := kv.StateKey{Group: hiG, Sub: hiS}
		store := memstore.New()
		defer store.Close()

		live := map[kv.StateKey][]byte{}
		for i := 0; i+1 < len(data) && i < 128; i += 2 {
			sk := kv.StateKey{Group: uint64(data[i] & 0x7f), Sub: uint64(data[i+1])}
			if data[i]&0x80 != 0 {
				sk.Group = max // force the top of the keyspace into play
			}
			if data[i+1] == 0xff {
				sk.Sub = max
			}
			if data[i]%5 == 4 {
				if err := store.Delete(sk.Bytes()); err != nil {
					t.Fatal(err)
				}
				delete(live, sk)
				continue
			}
			val := []byte{data[i], data[i+1], byte(i)}
			if err := store.Put(sk.Bytes(), val); err != nil {
				t.Fatal(err)
			}
			live[sk] = val
		}

		var want []kv.Entry
		for sk, v := range live {
			if sk.Less(lo) || hi.Less(sk) {
				continue
			}
			want = append(want, kv.Entry{Key: sk, Value: v})
		}
		sort.Slice(want, func(i, j int) bool { return want[i].Key.Less(want[j].Key) })

		got, err := kv.ScanRange(store, lo, hi)
		if err != nil {
			t.Fatalf("ScanRange([%v, %v]): %v", lo, hi, err)
		}
		if hi.Less(lo) && len(got) != 0 {
			t.Fatalf("inverted range [%v, %v] returned %d entries", lo, hi, len(got))
		}
		if len(got) != len(want) {
			t.Fatalf("scan [%v, %v] returned %d entries, want %d", lo, hi, len(got), len(want))
		}
		for i := range got {
			if got[i].Key != want[i].Key || !bytes.Equal(got[i].Value, want[i].Value) {
				t.Fatalf("entry %d: got %v=%q, want %v=%q", i, got[i].Key, got[i].Value, want[i].Key, want[i].Value)
			}
		}

		// Abandoning an iterator mid-drain and closing it must be safe,
		// and a closed snapshot's iterator must report ErrClosed.
		it, err := kv.IterOf(store, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		it.Next()
		if err := it.Close(); err != nil {
			t.Fatalf("close mid-drain: %v", err)
		}
		snap, err := kv.SnapshotOf(store)
		if err != nil {
			t.Fatal(err)
		}
		snap.Close()
		dead := snap.Iter(lo, hi)
		if dead.Next() {
			t.Fatal("iterator over closed snapshot yielded an entry")
		}
		if len(want) > 0 && !errors.Is(dead.Err(), kv.ErrClosed) {
			t.Fatalf("iterator over closed snapshot: err = %v, want ErrClosed", dead.Err())
		}
	})
}
