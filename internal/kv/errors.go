package kv

import (
	"errors"
	"fmt"
)

// Error taxonomy for the resilience layer. Store errors fall into three
// kinds that retry logic must distinguish:
//
//   - transient: the operation failed but the store may recover; a retry
//     is allowed. The failure happened BEFORE the operation took effect
//     unless the error is also outcome-unknown.
//   - outcome-unknown: the caller cannot tell whether the operation was
//     applied (a timeout, a connection lost after the request was sent).
//     Retrying is safe only for idempotent operations — never for Merge,
//     whose replay would duplicate the operand.
//   - fatal: everything else; retrying will not help.
//
// ErrNotFound and ErrMergeUnsupported are part of the Store contract,
// not failures, and are never classified by these helpers.

// Sentinel errors produced by the resilience wrappers.
var (
	// ErrInjectedFault is returned by ChaosStore for an injected transient
	// error. The contract is fail-before-apply: the wrapped operation was
	// NOT executed, so retrying any operation — including Merge — is safe.
	ErrInjectedFault = errors.New("kv: injected chaos fault")
	// ErrDeadlineExceeded is returned by ResilientStore when an operation
	// exceeds its per-op deadline. The operation may still complete in the
	// background, so the outcome is unknown.
	ErrDeadlineExceeded = errors.New("kv: store operation deadline exceeded")
	// ErrBreakerOpen is returned by ResilientStore while its circuit
	// breaker is open: the operation was rejected without reaching the
	// store (fail-fast, no effect).
	ErrBreakerOpen = errors.New("kv: circuit breaker open")
)

// transientError marks an error as transient (retryable).
type transientError struct{ err error }

func (e *transientError) Error() string   { return e.err.Error() }
func (e *transientError) Unwrap() error   { return e.err }
func (e *transientError) Transient() bool { return true }

// TransientError wraps err so Transient reports true for it. A nil err
// returns nil.
func TransientError(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// Transient reports whether err is marked transient: it wraps one of the
// transient sentinels or any error in its chain implements
// `Transient() bool` returning true.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrInjectedFault) || errors.Is(err, ErrDeadlineExceeded) || errors.Is(err, ErrBreakerOpen) {
		return true
	}
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// unknownOutcomeError marks an error whose operation may have applied.
type unknownOutcomeError struct{ err error }

func (e *unknownOutcomeError) Error() string        { return e.err.Error() }
func (e *unknownOutcomeError) Unwrap() error        { return e.err }
func (e *unknownOutcomeError) OutcomeUnknown() bool { return true }

// UnknownOutcomeError wraps err so OutcomeUnknown reports true for it.
// A nil err returns nil.
func UnknownOutcomeError(err error) error {
	if err == nil {
		return nil
	}
	return &unknownOutcomeError{err: err}
}

// OutcomeUnknown reports whether the failed operation may nevertheless
// have taken effect (so a non-idempotent retry could duplicate it).
func OutcomeUnknown(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrDeadlineExceeded) {
		return true
	}
	var u interface{ OutcomeUnknown() bool }
	return errors.As(err, &u) && u.OutcomeUnknown()
}

// RetrySafe reports whether retrying op after err cannot duplicate or
// drop effects: the error must be transient, and for non-idempotent
// operations (Merge) the failed attempt must be known to have had no
// effect. This is the single decision point the resilience layer and
// any external retry loop must share.
func RetrySafe(op Op, err error) bool {
	if !Transient(err) {
		return false
	}
	if op == OpMerge && OutcomeUnknown(err) {
		return false
	}
	return true
}

// ResilienceCounters aggregates the observable side effects of a
// ResilientStore (and anything else that retries): how often the
// happy path was left. All counts are cumulative since construction.
type ResilienceCounters struct {
	// Retries is the number of retry attempts issued (excluding each
	// operation's first attempt).
	Retries uint64
	// Timeouts is the number of attempts that exceeded the per-op deadline.
	Timeouts uint64
	// BreakerTrips is the number of closed/half-open -> open transitions.
	BreakerTrips uint64
	// FastFails is the number of operations rejected while the breaker
	// was open.
	FastFails uint64
	// Degraded is the number of operations that ultimately failed after
	// exhausting their retry budget.
	Degraded uint64
}

// Sub returns c - prev, for computing per-run deltas.
func (c ResilienceCounters) Sub(prev ResilienceCounters) ResilienceCounters {
	return ResilienceCounters{
		Retries:      c.Retries - prev.Retries,
		Timeouts:     c.Timeouts - prev.Timeouts,
		BreakerTrips: c.BreakerTrips - prev.BreakerTrips,
		FastFails:    c.FastFails - prev.FastFails,
		Degraded:     c.Degraded - prev.Degraded,
	}
}

func (c ResilienceCounters) String() string {
	return fmt.Sprintf("retries=%d timeouts=%d trips=%d fastfails=%d degraded=%d",
		c.Retries, c.Timeouts, c.BreakerTrips, c.FastFails, c.Degraded)
}

// ResilienceReporter is implemented by stores that track resilience
// counters; the performance evaluator snapshots them around each run to
// report per-run deltas in its Result.
type ResilienceReporter interface {
	ResilienceCounters() ResilienceCounters
}
