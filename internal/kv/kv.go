// Package kv defines the common vocabulary shared by every component of
// the Gadget harness: the state access record that operator state machines
// emit, the composite state key, and the Store interface implemented by
// the four KV engines (lsm, lethe, faster, btree) plus the memstore oracle.
package kv

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Op is a state store operation type. The four values mirror the
// operations supported by RocksDB, which the paper adopts as the canonical
// set; the performance evaluator translates them for stores with a
// different native vocabulary (e.g. merge becomes read-modify-write).
type Op uint8

const (
	OpGet Op = iota
	OpPut
	OpMerge
	OpDelete
	// OpFGet is the final get that retrieves window contents on trigger
	// (FGet in the paper's Figure 8). It executes exactly like OpGet but
	// is tracked separately so analyses can distinguish per-event reads
	// from trigger-time reads.
	OpFGet
	// OpScan is a consistent range scan over the tail of a key group: it
	// reads every live entry in [Key, {Key.Group, MaxUint64}] from a
	// point-in-time view of the store. Scan-aware operators use it for
	// trigger-time window drains (Key.Sub = 0 scans the whole group) and
	// range-join probes (Key.Sub = the lower time bound). Engines without
	// native snapshots serve it through the stop-the-world
	// FallbackSnapshot path.
	OpScan

	numOps
)

// NumOps is the number of distinct operation types.
const NumOps = int(numOps)

// String returns the lower-case operation name.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpMerge:
		return "merge"
	case OpDelete:
		return "delete"
	case OpFGet:
		return "fget"
	case OpScan:
		return "scan"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// IsRead reports whether the operation only reads state.
func (o Op) IsRead() bool { return o == OpGet || o == OpFGet || o == OpScan }

// StateKey is the 128-bit composite key under which operator state is
// stored. Group holds the event key (or a stream/operator discriminator)
// and Sub a namespace within the group: the window start timestamp for
// window operators, the event timestamp for join buffers, or zero for
// per-key rolling aggregates.
type StateKey struct {
	Group uint64
	Sub   uint64
}

// KeyLen is the encoded length of a StateKey in bytes.
const KeyLen = 16

// Encode appends the big-endian encoding of k to dst and returns the
// extended slice. Big-endian ensures lexicographic byte order equals
// numeric order, so range locality observed by the B+Tree and LSM engines
// matches the timestamp locality of streaming state.
func (k StateKey) Encode(dst []byte) []byte {
	var b [KeyLen]byte
	binary.BigEndian.PutUint64(b[0:8], k.Group)
	binary.BigEndian.PutUint64(b[8:16], k.Sub)
	return append(dst, b[:]...)
}

// Bytes returns a fresh 16-byte encoding of k.
func (k StateKey) Bytes() []byte { return k.Encode(make([]byte, 0, KeyLen)) }

// DecodeStateKey parses a key encoded by Encode.
func DecodeStateKey(b []byte) (StateKey, error) {
	if len(b) != KeyLen {
		return StateKey{}, fmt.Errorf("kv: state key must be %d bytes, got %d", KeyLen, len(b))
	}
	return StateKey{
		Group: binary.BigEndian.Uint64(b[0:8]),
		Sub:   binary.BigEndian.Uint64(b[8:16]),
	}, nil
}

// Less reports whether k orders before other (Group first, then Sub),
// which matches the byte order of the encoded form.
func (k StateKey) Less(other StateKey) bool {
	if k.Group != other.Group {
		return k.Group < other.Group
	}
	return k.Sub < other.Sub
}

func (k StateKey) String() string { return fmt.Sprintf("%d/%d", k.Group, k.Sub) }

// Access is one element of a state access stream: operation p on key k
// with a value of Size bytes at event time Time (§2.3 of the paper).
// Values themselves are synthesized at replay time from Size, keeping
// traces compact and generation fast.
type Access struct {
	Op   Op
	Key  StateKey
	Size uint32 // value or merge-operand size in bytes; 0 for reads/deletes
	Time int64  // event time in milliseconds
}

// Store is the uniform interface over every KV engine in this repository.
// Implementations must be safe for concurrent use; the dataflow model
// guarantees a single writer per key, but the concurrent-operator
// experiments (paper §6.4) share one store instance between operators.
type Store interface {
	// Get returns the value stored under key, or ErrNotFound.
	// The returned slice must not be modified by the caller.
	Get(key []byte) ([]byte, error)
	// Put stores value under key, replacing any previous value.
	Put(key, value []byte) error
	// Merge lazily appends operand to the value under key (RocksDB
	// StringAppend semantics). Engines without a native merge return
	// ErrMergeUnsupported and rely on the evaluator's RMW translation.
	Merge(key, operand []byte) error
	// Delete removes key. Deleting an absent key is not an error.
	Delete(key []byte) error
	// Close releases all resources. The store must not be used after.
	Close() error
}

// Sizer is implemented by stores that can report an approximate total
// size of live data, used by experiments to sanity-check state growth.
type Sizer interface {
	ApproximateSize() int64
}

// Common errors shared by all engines.
var (
	// ErrNotFound is returned by Get when the key does not exist.
	ErrNotFound = errors.New("kv: key not found")
	// ErrMergeUnsupported is returned by engines without a native merge
	// operator (FASTER, BerkeleyDB-style B+Tree).
	ErrMergeUnsupported = errors.New("kv: merge not supported by this engine")
	// ErrClosed is returned by operations on a closed store.
	ErrClosed = errors.New("kv: store is closed")
)

// Capabilities describes optional engine features, letting the evaluator
// pick the correct op translation without type switches.
type Capabilities struct {
	// NativeMerge is true when Merge is supported directly.
	NativeMerge bool
	// InPlaceUpdate is true for engines that can update a record without
	// rewriting it elsewhere (hash stores, B+Trees).
	InPlaceUpdate bool
	// Snapshots is true when Snapshot() produces a cheap native
	// point-in-time view (a pinned LSM version, copy-on-write pages, an
	// in-memory copy of the oracle). Engines that only satisfy
	// Snapshotter through the shared stop-the-world FallbackSnapshot
	// report false, so evaluators can budget for the full-copy cost.
	Snapshots bool
	// RangeScans is true when the engine serves ordered range iteration
	// natively (sorted structure or a server-side scan), rather than by
	// materializing and sorting a full copy.
	RangeScans bool
}

// Capabler is implemented by stores to advertise their Capabilities.
//
// Contract: every engine and every store wrapper MUST implement Capabler.
// Wrappers delegate with CapsOf(inner) so capabilities survive
// middleware composition. A store without a Caps method advertises the
// zero Capabilities value — no native merge, no in-place updates, no
// snapshots, no range scans — so a missing implementation degrades to
// the most conservative translation instead of silently claiming
// features (a plain store used to be assumed to support native merge).
type Capabler interface {
	Caps() Capabilities
}

// CapsOf returns the capabilities of s. Stores that do not implement
// Capabler report the explicit zero value: no optional features.
func CapsOf(s Store) Capabilities {
	if c, ok := s.(Capabler); ok {
		return c.Caps()
	}
	return Capabilities{}
}
