package remote

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"gadget/internal/kv"
	"gadget/internal/memstore"
)

func startPipelinePair(t *testing.T, opts PipelineOptions) (*Server, *PipelinedClient, *memstore.Store) {
	t.Helper()
	backing := memstore.New()
	srv, err := Serve(backing, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); backing.Close() })
	cli, err := DialPipeline(srv.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return srv, cli, backing
}

func TestPipelineBasicOps(t *testing.T) {
	_, cli, _ := startPipelinePair(t, PipelineOptions{})
	if _, err := cli.Get([]byte("a")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("miss = %v", err)
	}
	if err := cli.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if v, err := cli.Get([]byte("a")); err != nil || string(v) != "1" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if err := cli.Merge([]byte("a"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if v, _ := cli.Get([]byte("a")); string(v) != "12" {
		t.Fatalf("merge = %q", v)
	}
	if err := cli.Delete([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Get([]byte("a")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatal("delete failed")
	}
}

// Many goroutines sharing one pipelined client: all ops must complete
// correctly, and the writer must have coalesced them (fewer batch frames
// than requests).
func TestPipelineConcurrentWorkers(t *testing.T) {
	_, cli, _ := startPipelinePair(t, PipelineOptions{Depth: 32})
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				k := []byte(fmt.Sprintf("w%d-k%d", w, i))
				if err := cli.Put(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if v, err := cli.Get(k); err != nil || string(v) != fmt.Sprintf("v%d", i) {
					t.Errorf("Get = %q, %v", v, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	m := cli.Metrics()
	if m["remote.requests"] != workers*perWorker*2 {
		t.Fatalf("requests = %d, want %d", m["remote.requests"], workers*perWorker*2)
	}
	if m["remote.batches"] == 0 || m["remote.batches"] > m["remote.requests"] {
		t.Fatalf("batches = %d of %d requests", m["remote.batches"], m["remote.requests"])
	}
	if m["remote.inflight"] != 0 {
		t.Fatalf("inflight gauge = %d after quiesce", m["remote.inflight"])
	}
}

// slowConn delays each Write, modelling a high-latency link. While the
// writer goroutine sleeps inside Write, concurrent callers keep
// enqueueing — so the next batch must carry several of them.
type slowConn struct {
	net.Conn
	delay time.Duration
}

func (s *slowConn) Write(p []byte) (int, error) {
	time.Sleep(s.delay)
	return s.Conn.Write(p)
}

// Under a slow link with concurrent callers, the writer must coalesce
// queued requests into shared batch frames rather than shipping one
// frame per request.
func TestPipelineCoalescesBatches(t *testing.T) {
	backing := memstore.New()
	srv, err := Serve(backing, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { srv.Close(); backing.Close() }()
	cli, err := DialPipeline(srv.Addr(), PipelineOptions{
		Depth: 64,
		Dialer: func(addr string) (net.Conn, error) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			return &slowConn{Conn: conn, delay: 200 * time.Microsecond}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const workers, perWorker = 16, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := cli.Put([]byte(fmt.Sprintf("c%d-%d", w, i)), []byte("v")); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	m := cli.Metrics()
	if m["remote.batches"]*2 > m["remote.requests"] {
		t.Fatalf("batches = %d of %d requests: writer is not coalescing", m["remote.batches"], m["remote.requests"])
	}
}

// A raw v3 server that answers each batch in reverse order: the client
// must match responses to callers by sequence number, not arrival order.
func TestPipelineOutOfOrderResponses(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		hello := make([]byte, helloLen)
		if _, err := io.ReadFull(conn, hello); err != nil {
			return
		}
		for {
			reqs, err := readBatch(conn)
			if err != nil {
				return
			}
			var out []byte
			for i := len(reqs) - 1; i >= 0; i-- {
				q := reqs[i]
				var hdr [rsp3HdrLen]byte
				binary.LittleEndian.PutUint64(hdr[0:8], q.seq)
				hdr[8] = statusOK
				// Echo the key back as the value so callers can verify
				// they got their own answer.
				binary.LittleEndian.PutUint32(hdr[9:13], uint32(len(q.key)))
				out = append(out, hdr[:]...)
				out = append(out, q.key...)
			}
			if _, err := conn.Write(out); err != nil {
				return
			}
		}
	}()

	cli, err := DialPipeline(ln.Addr().String(), PipelineOptions{Depth: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := []byte(fmt.Sprintf("w%d-i%d", w, i))
				v, err := cli.Get(k)
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				if !bytes.Equal(v, k) {
					t.Errorf("got %q for key %q: responses crossed wires", v, k)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// Reconnect replay under pipelining must be exactly-once: concurrent
// merges driven through failing connections appear in the backing store
// exactly once each, even when a whole in-flight batch is retransmitted.
func TestPipelineReconnectExactlyOnceMerges(t *testing.T) {
	backing := memstore.New()
	srv, err := Serve(backing, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { srv.Close(); backing.Close() }()

	// Kill connections at assorted points: mid-hello, mid-batch,
	// mid-response. Budgets grow so later connections carry real traffic
	// before dying.
	budgets := make([]int, 30)
	for i := range budgets {
		budgets[i] = 10 + 37*i%400
	}
	cli, err := DialPipeline(srv.Addr(), PipelineOptions{
		Dialer:  flakyDialer(budgets),
		Redials: 40,
		Depth:   16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const workers, perWorker = 4, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := []byte(fmt.Sprintf("m%d", w))
			for i := 0; i < perWorker; i++ {
				if err := cli.Merge(key, []byte(fmt.Sprintf("<%d:%d>", w, i))); err != nil {
					t.Errorf("Merge %d/%d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for w := 0; w < workers; w++ {
		got, err := backing.Get([]byte(fmt.Sprintf("m%d", w)))
		if err != nil {
			t.Fatalf("worker %d key: %v", w, err)
		}
		for i := 0; i < perWorker; i++ {
			token := fmt.Sprintf("<%d:%d>", w, i)
			if n := strings.Count(string(got), token); n != 1 {
				t.Fatalf("operand %s applied %d times (duplicate or dropped merge)", token, n)
			}
		}
	}
	if cli.Metrics()["remote.redials"] == 0 {
		t.Fatal("test exercised no reconnects")
	}
}

// One server must serve v2 and v3 clients side by side over the same
// backing store.
func TestV2AndV3ClientsShareServer(t *testing.T) {
	srv, v3, backing := startPipelinePair(t, PipelineOptions{})
	v2, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	if err := v2.Put([]byte("from-v2"), []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := v3.Put([]byte("from-v3"), []byte("b")); err != nil {
		t.Fatal(err)
	}
	if v, err := v3.Get([]byte("from-v2")); err != nil || string(v) != "a" {
		t.Fatalf("v3 read of v2 write = %q, %v", v, err)
	}
	if v, err := v2.Get([]byte("from-v3")); err != nil || string(v) != "b" {
		t.Fatalf("v2 read of v3 write = %q, %v", v, err)
	}
	if v, err := backing.Get([]byte("from-v3")); err != nil || string(v) != "b" {
		t.Fatalf("backing = %q, %v", v, err)
	}
}

// ScanRange and Snapshot work over the pipeline like they do over v2.
func TestPipelineScanAndSnapshot(t *testing.T) {
	_, cli, _ := startPipelinePair(t, PipelineOptions{})
	for i := 0; i < 10; i++ {
		k := kv.StateKey{Group: 1, Sub: uint64(i)}
		if err := cli.Put(k.Bytes(), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := cli.ScanRange(kv.StateKey{Group: 1, Sub: 2}, kv.StateKey{Group: 1, Sub: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("scan [2,5] = %d entries, want 4", len(entries))
	}
	for i, e := range entries {
		if e.Key.Sub != uint64(i+2) || string(e.Value) != fmt.Sprintf("v%d", i+2) {
			t.Fatalf("entry %d = %+v", i, e)
		}
	}
	snap, err := cli.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	got, err := kv.CollectIter(snap.Iter(kv.StateKey{}, kv.MaxStateKey))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("snapshot = %d entries, want 10", len(got))
	}
}

// Oversized requests are refused client-side with a typed error, without
// disturbing the pipeline.
func TestPipelineFrameTooLarge(t *testing.T) {
	_, cli, _ := startPipelinePair(t, PipelineOptions{})
	big := make([]byte, maxFrame+1)
	if err := cli.Put([]byte("k"), big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized Put = %v, want ErrFrameTooLarge", err)
	}
	if err := cli.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("pipeline unusable after refused frame: %v", err)
	}
}

func TestPipelineClientAfterClose(t *testing.T) {
	_, cli, _ := startPipelinePair(t, PipelineOptions{})
	if err := cli.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	cli.Close()
	if err := cli.Put([]byte("k"), nil); !errors.Is(err, kv.ErrClosed) {
		t.Fatalf("Put after close = %v", err)
	}
	if err := cli.Close(); err != nil {
		t.Fatalf("double close = %v", err)
	}
}

// A server that swallows requests without answering: the read deadline
// must fail pending ops with a transient, outcome-unknown error instead
// of hanging all callers forever.
func TestPipelineTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, conn)
		}
	}()
	cli, err := DialPipeline(ln.Addr().String(), PipelineOptions{
		Timeout: 20 * time.Millisecond,
		Redials: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	start := time.Now()
	err = cli.Put([]byte("k"), []byte("v"))
	if err == nil {
		t.Fatal("hung server should time out")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("timeout too slow: %v", time.Since(start))
	}
	if !kv.Transient(err) || !kv.OutcomeUnknown(err) {
		t.Fatalf("timeout misclassified: transient=%v unknown=%v (%v)", kv.Transient(err), kv.OutcomeUnknown(err), err)
	}
}

// Depth must bound the in-flight window: with Depth=1 the pipeline
// degrades to serial request/response but still works.
func TestPipelineDepthOne(t *testing.T) {
	_, cli, _ := startPipelinePair(t, PipelineOptions{Depth: 1})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := []byte(fmt.Sprintf("d1-w%d-%d", w, i))
				if err := cli.Put(k, []byte("v")); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// Backend errors and panics propagate per-request over the batch path
// without poisoning the connection.
func TestPipelineServerPanicRecovery(t *testing.T) {
	backing := &panicStore{memstore.New()}
	srv, err := Serve(backing, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { srv.Close(); backing.Close() }()
	cli, err := DialPipeline(srv.Addr(), PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Merge([]byte("k"), []byte("x")); err == nil {
		t.Fatal("panicking op should error")
	}
	if err := cli.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("connection poisoned by panic: %v", err)
	}
	if v, err := cli.Get([]byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, err)
	}
}

func BenchmarkPipelinedRoundTrip(b *testing.B) {
	backing := memstore.New()
	srv, err := Serve(backing, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer func() { srv.Close(); backing.Close() }()
	cli, err := DialPipeline(srv.Addr(), PipelineOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	key := []byte("bench-key")
	val := make([]byte, 256)
	cli.Put(key, val)
	b.ResetTimer()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			cli.Get(key)
		}
	})
}
