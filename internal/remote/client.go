package remote

import (
	"bufio"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gadget/internal/kv"
)

// ClientOptions tunes the client's transport resilience.
type ClientOptions struct {
	// Timeout bounds each network round trip (connection deadline per
	// request/response exchange; 0 = none).
	Timeout time.Duration
	// Redials is how many reconnect-and-replay attempts each operation
	// may spend after a transport failure (0 = default 2, -1 = none).
	Redials int
	// Dialer overrides the transport dialer (tests inject flaky
	// connections here); nil uses net.Dial("tcp", addr).
	Dialer func(addr string) (net.Conn, error)
}

// withDefaults normalizes the redial budget.
func (o ClientOptions) withDefaults() ClientOptions {
	if o.Redials == 0 {
		o.Redials = 2
	}
	if o.Redials < 0 {
		o.Redials = 0
	}
	return o
}

// newSessionID draws a random 64-bit session identifier.
func newSessionID() (uint64, error) {
	var idBuf [8]byte
	if _, err := rand.Read(idBuf[:]); err != nil {
		return 0, fmt.Errorf("remote: session id: %w", err)
	}
	return binary.LittleEndian.Uint64(idBuf[:]), nil
}

// Client is a protocol-v2 kv.Store backed by a remote Server. It is safe
// for concurrent use; requests are serialized over one connection (the
// dataflow model's single-writer-per-task discipline). Transport
// failures do not poison the client: the connection is dropped and
// re-dialed, and the in-flight request is replayed under its original
// sequence number, which the server deduplicates. For many in-flight
// requests per connection, use PipelinedClient (protocol v3).
type Client struct {
	addr      string
	opts      ClientOptions
	sessionID uint64

	mu     sync.Mutex
	conn   net.Conn
	r      *bufio.Reader
	w      *bufio.Writer
	seq    uint64
	closed bool

	// Transport counters (atomics so Metrics doesn't contend with the
	// serialized request path).
	requests  atomic.Uint64 // operations issued (one per roundTrip)
	dials     atomic.Uint64 // successful connects, initial included
	redials   atomic.Uint64 // replay attempts after a transport failure
	failures  atomic.Uint64 // operations that exhausted the redial budget
	scans     atomic.Uint64 // range scans issued
	snapshots atomic.Uint64 // fallback snapshots materialized
	iterOps   atomic.Int64  // entries stepped through snapshot iterators
}

var _ kv.Store = (*Client)(nil)

// Dial connects to a Server with default options.
func Dial(addr string) (*Client, error) { return DialOptions(addr, ClientOptions{}) }

// DialOptions connects to a Server. The initial connection is
// established eagerly so configuration errors surface immediately.
func DialOptions(addr string, opts ClientOptions) (*Client, error) {
	opts = opts.withDefaults()
	id, err := newSessionID()
	if err != nil {
		return nil, err
	}
	c := &Client{addr: addr, opts: opts, sessionID: id}
	c.mu.Lock()
	defer c.mu.Unlock()
	// The initial connect shares the redial budget: a transient blip at
	// dial time should not fail client construction when redials are on.
	for attempt := 0; attempt <= opts.Redials; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * time.Millisecond)
		}
		if err = c.connectLocked(); err == nil {
			return c, nil
		}
		c.dropConnLocked()
	}
	return nil, err
}

// Caps mirrors a store with native merge (the server translates) and
// server-side range scans. Snapshots stays false: Snapshot() works, but
// it materializes the full keyspace over the wire into a stop-the-world
// kv.FallbackSnapshot rather than a cheap pinned view.
func (c *Client) Caps() kv.Capabilities {
	return kv.Capabilities{NativeMerge: true, RangeScans: true}
}

func (c *Client) dial() (net.Conn, error) {
	if c.opts.Dialer != nil {
		return c.opts.Dialer(c.addr)
	}
	return net.Dial("tcp", c.addr)
}

// connectLocked dials and sends the session hello. Caller holds c.mu.
func (c *Client) connectLocked() error {
	conn, err := c.dial()
	if err != nil {
		return err
	}
	hello := appendHello(make([]byte, 0, helloLen), protoV2, c.sessionID)
	if c.opts.Timeout > 0 {
		conn.SetDeadline(time.Now().Add(c.opts.Timeout))
	}
	if _, err := conn.Write(hello); err != nil {
		conn.Close()
		return err
	}
	if c.opts.Timeout > 0 {
		conn.SetDeadline(time.Time{})
	}
	c.conn = conn
	c.r = bufio.NewReaderSize(conn, 64<<10)
	c.w = bufio.NewWriterSize(conn, 64<<10)
	c.dials.Add(1)
	return nil
}

// dropConnLocked discards a connection in an unknown state; the next
// operation re-dials. Caller holds c.mu.
func (c *Client) dropConnLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.r, c.w = nil, nil
	}
}

// exchangeLocked performs one framed request/response on the current
// connection. Caller holds c.mu and guarantees c.conn != nil.
func (c *Client) exchangeLocked(seq uint64, op byte, key, val []byte) ([]byte, byte, error) {
	if c.opts.Timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.opts.Timeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	var hdr [reqHdrLen]byte
	binary.LittleEndian.PutUint64(hdr[0:8], seq)
	hdr[8] = op
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[13:17], uint32(len(val)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return nil, 0, err
	}
	if _, err := c.w.Write(key); err != nil {
		return nil, 0, err
	}
	if _, err := c.w.Write(val); err != nil {
		return nil, 0, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, 0, err
	}
	var rhdr [rspHdrLen]byte
	if _, err := io.ReadFull(c.r, rhdr[:]); err != nil {
		return nil, 0, err
	}
	status := rhdr[0]
	n := binary.LittleEndian.Uint32(rhdr[1:])
	if n > maxFrame {
		// A peer violating the frame limit cannot be resynchronized.
		return nil, 0, fmt.Errorf("%w: %d-byte response", ErrFrameTooLarge, n)
	}
	out := make([]byte, n)
	if _, err := io.ReadFull(c.r, out); err != nil {
		return nil, 0, err
	}
	return out, status, nil
}

// roundTrip sends one request, reconnecting and replaying it under the
// same sequence number on transport failure. Errors it returns after
// exhausting the redial budget are transient and outcome-unknown: the
// request may or may not have been applied.
func (c *Client) roundTrip(op byte, key, val []byte) ([]byte, byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, statusError, kv.ErrClosed
	}
	if len(key) > maxFrame || len(val) > maxFrame {
		return nil, statusError, ErrFrameTooLarge
	}
	c.seq++
	seq := c.seq
	c.requests.Add(1)
	var lastErr error
	for attempt := 0; attempt <= c.opts.Redials; attempt++ {
		if attempt > 0 {
			// Brief pause so redials don't spin against a down server;
			// longer backoff belongs to the kv resilience layer above.
			c.redials.Add(1)
			time.Sleep(time.Duration(attempt) * time.Millisecond)
		}
		if c.conn == nil {
			if err := c.connectLocked(); err != nil {
				lastErr = err
				continue
			}
		}
		out, status, err := c.exchangeLocked(seq, op, key, val)
		if err == nil {
			return out, status, nil
		}
		lastErr = err
		c.dropConnLocked()
		if errors.Is(err, ErrFrameTooLarge) {
			// Protocol violation, not a transport blip: don't replay.
			return nil, statusError, err
		}
	}
	c.failures.Add(1)
	return nil, statusError, kv.UnknownOutcomeError(kv.TransientError(
		fmt.Errorf("remote: request %d failed after %d attempts: %w", seq, c.opts.Redials+1, lastErr)))
}

// Metrics implements kv.Introspector: client-side transport counters
// under "remote.*".
func (c *Client) Metrics() map[string]int64 {
	return map[string]int64{
		"remote.requests":  int64(c.requests.Load()),
		"remote.dials":     int64(c.dials.Load()),
		"remote.redials":   int64(c.redials.Load()),
		"remote.failures":  int64(c.failures.Load()),
		"remote.scans":     int64(c.scans.Load()),
		"remote.snapshots": int64(c.snapshots.Load()),
		"remote.iter_ops":  c.iterOps.Load(),
	}
}

// Get implements kv.Store.
func (c *Client) Get(key []byte) ([]byte, error) {
	out, status, err := c.roundTrip(opGet, key, nil)
	if err != nil {
		return nil, err
	}
	switch status {
	case statusOK:
		return out, nil
	case statusNotFound:
		return nil, kv.ErrNotFound
	default:
		return nil, remoteError(status, out)
	}
}

// Put implements kv.Store.
func (c *Client) Put(key, value []byte) error { return c.write(opPut, key, value) }

// Merge implements kv.Store.
func (c *Client) Merge(key, operand []byte) error { return c.write(opMerge, key, operand) }

// Delete implements kv.Store.
func (c *Client) Delete(key []byte) error { return c.write(opDelete, key, nil) }

// ScanRange implements kv.RangeScanner with a single server-side scan
// frame: the server walks [lo, hi] against its engine's snapshot and
// returns the serialized entry list, so consistency is the server
// engine's, not dial-order's.
func (c *Client) ScanRange(lo, hi kv.StateKey) ([]kv.Entry, error) {
	bounds := hi.Encode(lo.Encode(make([]byte, 0, 2*kv.KeyLen)))
	out, status, err := c.roundTrip(opScan, bounds, nil)
	if err != nil {
		return nil, err
	}
	if status != statusOK {
		return nil, remoteError(status, out)
	}
	c.scans.Add(1)
	return decodeEntries(out)
}

// Snapshot implements kv.Snapshotter via the stop-the-world fallback: a
// full-range ScanRange materialized into a kv.FallbackSnapshot. The
// snapshot is consistent as of the server-side scan but costs one full
// keyspace transfer; Caps().Snapshots is false accordingly.
func (c *Client) Snapshot() (kv.Snapshot, error) {
	entries, err := c.ScanRange(kv.StateKey{}, kv.MaxStateKey)
	if err != nil {
		return nil, err
	}
	snap := kv.NewFallbackSnapshot(entries)
	snap.CountIterOps(&c.iterOps)
	c.snapshots.Add(1)
	return snap, nil
}

func (c *Client) write(op byte, key, val []byte) error {
	out, status, err := c.roundTrip(op, key, val)
	if err != nil {
		return err
	}
	if status != statusOK {
		return remoteError(status, out)
	}
	return nil
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.conn != nil {
		return c.conn.Close()
	}
	return nil
}
