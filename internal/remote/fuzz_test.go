package remote

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"

	"gadget/internal/memstore"
)

// FuzzServerFrame throws raw bytes at a live server connection. The
// server must never panic or hang, and must keep serving well-formed
// clients afterward.
func FuzzServerFrame(f *testing.F) {
	// Seed corpus: valid hello, valid hello + valid request, truncated
	// frames, oversized length fields, stale sequence numbers.
	hello := make([]byte, helloLen)
	binary.LittleEndian.PutUint32(hello[0:4], protoMagic)
	hello[4] = protoV2
	binary.LittleEndian.PutUint64(hello[5:13], 42)
	f.Add(hello)
	f.Add(hello[:7])
	f.Add([]byte("GET / HTTP/1.1\r\n\r\n"))

	req := make([]byte, reqHdrLen+1+1)
	binary.LittleEndian.PutUint64(req[0:8], 1) // seq
	req[8] = opPut
	binary.LittleEndian.PutUint32(req[9:13], 1)  // keyLen
	binary.LittleEndian.PutUint32(req[13:17], 1) // valLen
	req[17], req[18] = 'k', 'v'
	f.Add(append(append([]byte{}, hello...), req...))

	huge := make([]byte, reqHdrLen)
	binary.LittleEndian.PutUint64(huge[0:8], 2)
	huge[8] = opGet
	binary.LittleEndian.PutUint32(huge[9:13], 0xFFFFFFFF)
	f.Add(append(append([]byte{}, hello...), huge...))

	backing := memstore.New()
	srv, err := Serve(backing, "127.0.0.1:0")
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { srv.Close(); backing.Close() })

	f.Fuzz(func(t *testing.T, data []byte) {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Skip("dial failed")
		}
		conn.SetDeadline(time.Now().Add(2 * time.Second))
		conn.Write(data)
		// Drain whatever the server answers until it closes or stalls;
		// the only requirement is that it neither panics nor hangs.
		io.Copy(io.Discard, conn)
		conn.Close()

		// The server must still serve a healthy client.
		cli, err := Dial(srv.Addr())
		if err != nil {
			t.Fatalf("server unusable after fuzz input %x: %v", data, err)
		}
		if err := cli.Put([]byte("k"), []byte("v")); err != nil {
			t.Fatalf("server poisoned by fuzz input %x: %v", data, err)
		}
		cli.Close()
	})
}

// FuzzBatchFrame exercises the v3 batch codec two ways: arbitrary bytes
// must decode without panics or over-reads, and any batch that does
// decode must survive a re-encode/re-decode round trip unchanged. It
// also throws the raw bytes at a live v3 server connection, which must
// keep serving well-formed clients afterward.
func FuzzBatchFrame(f *testing.F) {
	// Seed corpus: a valid single-op batch, a valid multi-op batch,
	// truncated payloads, a zero-count header, and length fields that
	// overrun the payload.
	one := appendBatch(nil, []request{{seq: 1, op: opPut, key: []byte("k"), val: []byte("v")}})
	f.Add(one)
	many := appendBatch(nil, []request{
		{seq: 2, op: opGet, key: []byte("a")},
		{seq: 3, op: opMerge, key: []byte("b"), val: []byte("+1")},
		{seq: 4, op: opDelete, key: []byte("c")},
	})
	f.Add(many)
	f.Add(one[:batchHdrLen+3])
	zero := make([]byte, batchHdrLen)
	f.Add(zero)
	overrun := append([]byte(nil), one...)
	binary.LittleEndian.PutUint32(overrun[batchHdrLen+9:], 0xFFFF)
	f.Add(overrun)

	backing := memstore.New()
	srv, err := Serve(backing, "127.0.0.1:0")
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { srv.Close(); backing.Close() })

	f.Fuzz(func(t *testing.T, data []byte) {
		// Codec robustness: decode must never panic, and a decodable
		// batch must round-trip exactly.
		if reqs, err := readBatch(bytes.NewReader(data)); err == nil {
			enc := appendBatch(nil, reqs)
			again, err := readBatch(bytes.NewReader(enc))
			if err != nil {
				t.Fatalf("re-decode of re-encoded batch failed: %v", err)
			}
			if len(again) != len(reqs) {
				t.Fatalf("round trip changed count: %d != %d", len(again), len(reqs))
			}
			for i := range reqs {
				if again[i].seq != reqs[i].seq || again[i].op != reqs[i].op ||
					!bytes.Equal(again[i].key, reqs[i].key) || !bytes.Equal(again[i].val, reqs[i].val) {
					t.Fatalf("round trip changed record %d: %+v != %+v", i, again[i], reqs[i])
				}
			}
		}

		// Server robustness: a v3 hello followed by the fuzz bytes must
		// neither panic nor poison the server.
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Skip("dial failed")
		}
		conn.SetDeadline(time.Now().Add(2 * time.Second))
		conn.Write(appendHello(nil, protoV3, 99))
		conn.Write(data)
		io.Copy(io.Discard, conn)
		conn.Close()

		cli, err := DialPipeline(srv.Addr(), PipelineOptions{})
		if err != nil {
			t.Fatalf("server unusable after fuzz input %x: %v", data, err)
		}
		if err := cli.Put([]byte("k"), []byte("v")); err != nil {
			t.Fatalf("server poisoned by fuzz input %x: %v", data, err)
		}
		cli.Close()
	})
}

// FuzzClientFrame feeds arbitrary bytes to the client as server
// responses. The client must never panic, hang, or over-read.
func FuzzClientFrame(f *testing.F) {
	// Seed corpus: OK response, not-found, error with message, transient,
	// truncated header, oversized payload length.
	ok := make([]byte, rspHdrLen)
	ok[0] = statusOK
	f.Add(ok)
	nf := make([]byte, rspHdrLen)
	nf[0] = statusNotFound
	f.Add(nf)
	msg := make([]byte, rspHdrLen+4)
	msg[0] = statusError
	binary.LittleEndian.PutUint32(msg[1:5], 4)
	copy(msg[5:], "boom")
	f.Add(msg)
	tr := make([]byte, rspHdrLen)
	tr[0] = statusTransient
	f.Add(tr)
	f.Add(ok[:2])
	huge := make([]byte, rspHdrLen)
	huge[0] = statusOK
	binary.LittleEndian.PutUint32(huge[1:5], 0xFFFFFFFF)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		server, clientSide := net.Pipe()
		dialer := func(addr string) (net.Conn, error) { return clientSide, nil }
		done := make(chan struct{})
		go func() {
			defer close(done)
			defer server.Close()
			server.SetDeadline(time.Now().Add(2 * time.Second))
			// Consume the hello and one request, then answer with the
			// fuzz bytes and hang up.
			hello := make([]byte, helloLen)
			if _, err := io.ReadFull(server, hello); err != nil {
				return
			}
			hdr := make([]byte, reqHdrLen)
			if _, err := io.ReadFull(server, hdr); err != nil {
				return
			}
			kl := binary.LittleEndian.Uint32(hdr[9:13])
			vl := binary.LittleEndian.Uint32(hdr[13:17])
			if kl < maxFrame && vl < maxFrame {
				io.CopyN(io.Discard, server, int64(kl)+int64(vl))
			}
			server.Write(data)
		}()

		cli, err := DialOptions("fuzz", ClientOptions{
			Dialer:  dialer,
			Redials: -1, // the pipe can only be dialed once
			Timeout: 500 * time.Millisecond,
		})
		if err == nil {
			// Any outcome is fine as long as it returns.
			cli.Get([]byte("k"))
			cli.Close()
		}
		clientSide.Close()
		<-done
	})
}

// FuzzTraceTrailer throws arbitrary bytes at the trace-trailer decoder
// (it must reject without panicking) and round-trips every in-order
// stamp pair through append/decode.
func FuzzTraceTrailer(f *testing.F) {
	f.Add([]byte{}, int64(0), int64(0))
	f.Add(make([]byte, traceTrailerLen), int64(1), int64(2))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 0, 0, 0}, int64(5), int64(5))
	f.Fuzz(func(t *testing.T, raw []byte, a, b int64) {
		// Arbitrary input: any outcome but a panic is fine, and success
		// implies the invariants the client relies on.
		if start, end, err := decodeTraceTrailer(raw); err == nil {
			if len(raw) != traceTrailerLen {
				t.Fatalf("decoded a %d-byte trailer", len(raw))
			}
			if start < 0 || end < start {
				t.Fatalf("accepted out-of-order stamps %d..%d", start, end)
			}
		}
		// Round trip: every valid stamp pair survives append/decode. The
		// sign-bit mask (not negation, which overflows on MinInt64) maps
		// arbitrary fuzz inputs onto the valid non-negative stamp domain.
		lo, hi := a&(1<<63-1), b&(1<<63-1)
		if hi < lo {
			lo, hi = hi, lo
		}
		enc := appendTraceTrailer(nil, lo, hi)
		start, end, err := decodeTraceTrailer(enc)
		if err != nil {
			t.Fatalf("round trip %d..%d: %v", lo, hi, err)
		}
		if start != lo || end != hi {
			t.Fatalf("round trip %d..%d = %d..%d", lo, hi, start, end)
		}
	})
}
