package remote

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"gadget/internal/core"
	"gadget/internal/eventgen"
	"gadget/internal/kv"
	"gadget/internal/memstore"
	"gadget/internal/replay"
)

func startPair(t *testing.T) (*Server, *Client, *memstore.Store) {
	t.Helper()
	backing := memstore.New()
	srv, err := Serve(backing, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); backing.Close() })
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return srv, cli, backing
}

func TestBasicOps(t *testing.T) {
	_, cli, _ := startPair(t)
	if _, err := cli.Get([]byte("a")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("miss = %v", err)
	}
	if err := cli.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if v, err := cli.Get([]byte("a")); err != nil || string(v) != "1" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if err := cli.Merge([]byte("a"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if v, _ := cli.Get([]byte("a")); string(v) != "12" {
		t.Fatalf("merge = %q", v)
	}
	if err := cli.Delete([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Get([]byte("a")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatal("delete failed")
	}
}

func TestEmptyKeysAndValues(t *testing.T) {
	_, cli, _ := startPair(t)
	if err := cli.Put(nil, nil); err != nil {
		t.Fatal(err)
	}
	if v, err := cli.Get(nil); err != nil || len(v) != 0 {
		t.Fatalf("empty key Get = %q, %v", v, err)
	}
}

func TestLargeValues(t *testing.T) {
	_, cli, _ := startPair(t)
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	if err := cli.Put([]byte("big"), big); err != nil {
		t.Fatal(err)
	}
	v, err := cli.Get([]byte("big"))
	if err != nil || len(v) != len(big) {
		t.Fatalf("big Get len=%d err=%v", len(v), err)
	}
	for i := range v {
		if v[i] != big[i] {
			t.Fatalf("corruption at %d", i)
		}
	}
}

func TestManyClients(t *testing.T) {
	srv, _, _ := startPair(t)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cli, err := Dial(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer cli.Close()
			for i := 0; i < 500; i++ {
				k := []byte(fmt.Sprintf("g%d-k%d", g, i))
				if err := cli.Put(k, []byte("v")); err != nil {
					t.Error(err)
					return
				}
				if _, err := cli.Get(k); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestClientAfterClose(t *testing.T) {
	_, cli, _ := startPair(t)
	cli.Close()
	if err := cli.Put([]byte("k"), nil); !errors.Is(err, kv.ErrClosed) {
		t.Fatalf("Put after close = %v", err)
	}
	if err := cli.Close(); err != nil {
		t.Fatalf("double close = %v", err)
	}
}

func TestServerCloseDisconnectsClients(t *testing.T) {
	srv, cli, _ := startPair(t)
	srv.Close()
	if err := cli.Put([]byte("k"), nil); err == nil {
		t.Fatal("put after server close should fail")
	}
}

func TestBackendErrorsPropagate(t *testing.T) {
	backing := memstore.New()
	backing.Close() // every op will error
	srv, err := Serve(backing, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Put([]byte("k"), nil); err == nil {
		t.Fatal("backend error should propagate")
	}
}

// The paper's external-state scenario: a full streaming workload driven
// through the remote store, concurrently from two operator instances.
func TestExternalStateWorkload(t *testing.T) {
	backing := memstore.New()
	srv, err := Serve(backing, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { srv.Close(); backing.Close() }()

	mkTrace := func(seed int64) []kv.Access {
		g, err := eventgen.NewSynthetic(eventgen.Config{Events: 2000, Keys: 20, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		src := eventgen.WithWatermarks(g, 100, 0)
		op, err := core.New(core.Config{Operator: core.TumblingIncr, WindowLengthMs: 1000})
		if err != nil {
			t.Fatal(err)
		}
		return core.Generate(src, op)
	}
	var wg sync.WaitGroup
	results := make([]replay.Result, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cli, err := Dial(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer cli.Close()
			res, err := replay.Run(cli, mkTrace(int64(i)), replay.Options{})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i, res := range results {
		if res.Ops == 0 || res.Errors != 0 {
			t.Fatalf("instance %d: %+v", i, res)
		}
	}
}

// flakyConn wraps a net.Conn and fails after a byte budget is spent
// across reads and writes, closing the underlying connection mid-frame.
type flakyConn struct {
	net.Conn
	mu     sync.Mutex
	budget int // bytes until injected failure; <0 = healthy
}

var errFlaky = errors.New("flaky conn: injected failure")

func (f *flakyConn) spend(n int) (allowed int, failed bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.budget < 0 {
		return n, false
	}
	if n <= f.budget {
		f.budget -= n
		return n, false
	}
	allowed = f.budget
	f.budget = 0
	return allowed, true
}

func (f *flakyConn) Write(p []byte) (int, error) {
	allowed, failed := f.spend(len(p))
	if !failed {
		return f.Conn.Write(p)
	}
	// Mid-frame disconnect: part of the frame reaches the peer, then the
	// connection dies.
	if allowed > 0 {
		f.Conn.Write(p[:allowed])
	}
	f.Conn.Close()
	return allowed, errFlaky
}

func (f *flakyConn) Read(p []byte) (int, error) {
	f.mu.Lock()
	budget := f.budget
	f.mu.Unlock()
	if budget < 0 {
		return f.Conn.Read(p)
	}
	if budget == 0 {
		f.Conn.Close()
		return 0, errFlaky
	}
	// Serve at most the remaining budget so the failure lands mid-frame.
	if len(p) > budget {
		p = p[:budget]
	}
	n, err := f.Conn.Read(p)
	f.spend(n)
	return n, err
}

// flakyDialer returns a Dialer whose first len(budgets) connections fail
// after the given byte budgets; later connections are healthy.
func flakyDialer(budgets []int) func(addr string) (net.Conn, error) {
	var mu sync.Mutex
	i := 0
	return func(addr string) (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		defer mu.Unlock()
		budget := -1
		if i < len(budgets) {
			budget = budgets[i]
			i++
		}
		return &flakyConn{Conn: conn, budget: budget}, nil
	}
}

// A single I/O error must not poison the connection: the client redials
// and the operation stream continues.
func TestClientSurvivesMidFrameDisconnect(t *testing.T) {
	backing := memstore.New()
	srv, err := Serve(backing, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { srv.Close(); backing.Close() }()

	// Budgets chosen to kill connections at assorted points: during the
	// hello, mid-request-header, mid-payload, and mid-response.
	cli, err := DialOptions(srv.Addr(), ClientOptions{
		Dialer:  flakyDialer([]int{5, 20, 40, 70, 150}),
		Redials: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	for i := 0; i < 50; i++ {
		k := []byte(fmt.Sprintf("k%02d", i))
		if err := cli.Put(k, []byte(fmt.Sprintf("v%02d", i))); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		if v, err := cli.Get(k); err != nil || string(v) != fmt.Sprintf("v%02d", i) {
			t.Fatalf("Get %d = %q, %v", i, v, err)
		}
	}
}

// Reconnect replay must be exactly-once: merges driven through failing
// connections appear in the backing store exactly once each.
func TestReconnectReplayExactlyOnceMerges(t *testing.T) {
	backing := memstore.New()
	srv, err := Serve(backing, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { srv.Close(); backing.Close() }()

	// Fail every other connection after a small budget, so many ops are
	// interrupted after the request was (fully or partially) sent.
	budgets := make([]int, 40)
	for i := range budgets {
		budgets[i] = 30 + 13*i%90
	}
	cli, err := DialOptions(srv.Addr(), ClientOptions{Dialer: flakyDialer(budgets), Redials: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	oracle := map[string]string{}
	key := func(i int) []byte { return []byte(fmt.Sprintf("m%d", i%7)) }
	for i := 0; i < 300; i++ {
		operand := fmt.Sprintf("<%d>", i)
		if err := cli.Merge(key(i), []byte(operand)); err != nil {
			t.Fatalf("Merge %d: %v", i, err)
		}
		k := string(key(i))
		oracle[k] += operand
	}
	for k, want := range oracle {
		got, err := backing.Get([]byte(k))
		if err != nil || string(got) != want {
			t.Fatalf("key %s: got %q, %v; want %q (duplicate or dropped merge)", k, got, err, want)
		}
	}
}

// Transient backend errors must cross the wire as retry-safe transient
// errors, and fatal ones as fatal.
func TestTransientStatusPropagation(t *testing.T) {
	backing := kv.NewChaosStore(memstore.New(), kv.ChaosPlan{Seed: 3, ErrorRate: 1.0})
	srv, err := Serve(backing, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { srv.Close(); backing.Close() }()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	err = cli.Put([]byte("k"), []byte("v"))
	if err == nil {
		t.Fatal("chaos fault should surface")
	}
	if !kv.Transient(err) {
		t.Fatalf("injected fault crossed the wire as fatal: %v", err)
	}
	if kv.OutcomeUnknown(err) {
		t.Fatalf("statusTransient is fail-before-apply, not outcome-unknown: %v", err)
	}
}

// panicStore panics on Merge — the server must fail the request, not the
// connection.
type panicStore struct{ *memstore.Store }

func (p *panicStore) Merge(key, operand []byte) error { panic("merge exploded") }

func TestServerPanicRecovery(t *testing.T) {
	backing := &panicStore{memstore.New()}
	srv, err := Serve(backing, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { srv.Close(); backing.Close() }()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Merge([]byte("k"), []byte("x")); err == nil {
		t.Fatal("panicking op should error")
	}
	// The connection must still work.
	if err := cli.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("connection poisoned by panic: %v", err)
	}
	if v, err := cli.Get([]byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, err)
	}
}

// Oversized frames are refused symmetrically with a typed error, without
// killing the connection on the client side.
func TestFrameTooLarge(t *testing.T) {
	_, cli, _ := startPair(t)
	big := make([]byte, maxFrame+1)
	if err := cli.Put([]byte("k"), big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized Put = %v, want ErrFrameTooLarge", err)
	}
	// The client never sent anything; the connection is fine.
	if err := cli.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("connection unusable after refused frame: %v", err)
	}
}

// A v1/garbage client must be rejected without disturbing the server.
func TestServerRejectsBadHello(t *testing.T) {
	srv, cli, _ := startPair(t)
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	raw.Write([]byte("GET / HTTP/1.1\r\n\r\n garbage garbage"))
	buf := make([]byte, 16)
	raw.SetReadDeadline(time.Now().Add(time.Second))
	if n, _ := raw.Read(buf); n != 0 {
		t.Fatalf("server answered a bad hello with %d bytes", n)
	}
	raw.Close()
	// Real clients are unaffected.
	if err := cli.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
}

// The client deadline turns a hung server connection into a transient,
// outcome-unknown error instead of hanging forever.
func TestClientTimeout(t *testing.T) {
	// A listener that accepts and then never answers (after the hello).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, conn) // swallow everything, answer nothing
		}
	}()
	cli, err := DialOptions(ln.Addr().String(), ClientOptions{Timeout: 20 * time.Millisecond, Redials: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	start := time.Now()
	err = cli.Put([]byte("k"), []byte("v"))
	if err == nil {
		t.Fatal("hung server should time out")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("timeout too slow: %v", time.Since(start))
	}
	if !kv.Transient(err) || !kv.OutcomeUnknown(err) {
		t.Fatalf("timeout misclassified: transient=%v unknown=%v (%v)", kv.Transient(err), kv.OutcomeUnknown(err), err)
	}
}

func BenchmarkRemoteRoundTrip(b *testing.B) {
	backing := memstore.New()
	srv, err := Serve(backing, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer func() { srv.Close(); backing.Close() }()
	cli, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	key := []byte("bench-key")
	val := make([]byte, 256)
	cli.Put(key, val)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cli.Get(key)
	}
}
