package remote

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"gadget/internal/core"
	"gadget/internal/eventgen"
	"gadget/internal/kv"
	"gadget/internal/memstore"
	"gadget/internal/replay"
)

func startPair(t *testing.T) (*Server, *Client, *memstore.Store) {
	t.Helper()
	backing := memstore.New()
	srv, err := Serve(backing, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); backing.Close() })
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return srv, cli, backing
}

func TestBasicOps(t *testing.T) {
	_, cli, _ := startPair(t)
	if _, err := cli.Get([]byte("a")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("miss = %v", err)
	}
	if err := cli.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if v, err := cli.Get([]byte("a")); err != nil || string(v) != "1" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if err := cli.Merge([]byte("a"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if v, _ := cli.Get([]byte("a")); string(v) != "12" {
		t.Fatalf("merge = %q", v)
	}
	if err := cli.Delete([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Get([]byte("a")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatal("delete failed")
	}
}

func TestEmptyKeysAndValues(t *testing.T) {
	_, cli, _ := startPair(t)
	if err := cli.Put(nil, nil); err != nil {
		t.Fatal(err)
	}
	if v, err := cli.Get(nil); err != nil || len(v) != 0 {
		t.Fatalf("empty key Get = %q, %v", v, err)
	}
}

func TestLargeValues(t *testing.T) {
	_, cli, _ := startPair(t)
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	if err := cli.Put([]byte("big"), big); err != nil {
		t.Fatal(err)
	}
	v, err := cli.Get([]byte("big"))
	if err != nil || len(v) != len(big) {
		t.Fatalf("big Get len=%d err=%v", len(v), err)
	}
	for i := range v {
		if v[i] != big[i] {
			t.Fatalf("corruption at %d", i)
		}
	}
}

func TestManyClients(t *testing.T) {
	srv, _, _ := startPair(t)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cli, err := Dial(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer cli.Close()
			for i := 0; i < 500; i++ {
				k := []byte(fmt.Sprintf("g%d-k%d", g, i))
				if err := cli.Put(k, []byte("v")); err != nil {
					t.Error(err)
					return
				}
				if _, err := cli.Get(k); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestClientAfterClose(t *testing.T) {
	_, cli, _ := startPair(t)
	cli.Close()
	if err := cli.Put([]byte("k"), nil); !errors.Is(err, kv.ErrClosed) {
		t.Fatalf("Put after close = %v", err)
	}
	if err := cli.Close(); err != nil {
		t.Fatalf("double close = %v", err)
	}
}

func TestServerCloseDisconnectsClients(t *testing.T) {
	srv, cli, _ := startPair(t)
	srv.Close()
	if err := cli.Put([]byte("k"), nil); err == nil {
		t.Fatal("put after server close should fail")
	}
}

func TestBackendErrorsPropagate(t *testing.T) {
	backing := memstore.New()
	backing.Close() // every op will error
	srv, err := Serve(backing, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Put([]byte("k"), nil); err == nil {
		t.Fatal("backend error should propagate")
	}
}

// The paper's external-state scenario: a full streaming workload driven
// through the remote store, concurrently from two operator instances.
func TestExternalStateWorkload(t *testing.T) {
	backing := memstore.New()
	srv, err := Serve(backing, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { srv.Close(); backing.Close() }()

	mkTrace := func(seed int64) []kv.Access {
		g, err := eventgen.NewSynthetic(eventgen.Config{Events: 2000, Keys: 20, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		src := eventgen.WithWatermarks(g, 100, 0)
		op, err := core.New(core.Config{Operator: core.TumblingIncr, WindowLengthMs: 1000})
		if err != nil {
			t.Fatal(err)
		}
		return core.Generate(src, op)
	}
	var wg sync.WaitGroup
	results := make([]replay.Result, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cli, err := Dial(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer cli.Close()
			res, err := replay.Run(cli, mkTrace(int64(i)), replay.Options{})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i, res := range results {
		if res.Ops == 0 || res.Errors != 0 {
			t.Fatalf("instance %d: %+v", i, res)
		}
	}
}

func BenchmarkRemoteRoundTrip(b *testing.B) {
	backing := memstore.New()
	srv, err := Serve(backing, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer func() { srv.Close(); backing.Close() }()
	cli, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	key := []byte("bench-key")
	val := make([]byte, 256)
	cli.Put(key, val)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cli.Get(key)
	}
}
