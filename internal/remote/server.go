package remote

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gadget/internal/kv"
)

// cachedRsp is one cached response in a session's replay window. The
// handle stamps ride along so a replayed answer echoes the ORIGINAL
// handling window — the op was applied exactly once, and the trace must
// attribute the once it was applied.
type cachedRsp struct {
	status     byte
	start, end int64 // server-monotonic handle stamps (0,0 when untraced)
	payload    []byte
}

// session is the server-side replay state of one client session: the
// highest applied sequence number and a bounded window of cached
// responses, so a reconnecting client can retransmit every request it
// has not seen answered (up to a whole pipeline window under v3) and
// receive the original responses without re-application.
type session struct {
	mu       sync.Mutex
	maxSeq   uint64
	window   map[uint64]cachedRsp
	order    []uint64 // seqs in arrival order, for FIFO eviction
	lastUsed time.Time
}

// dedupe classifies seq against the session and, for fresh sequence
// numbers, runs apply exactly once and caches its response (including
// the handle stamps apply reports). cap bounds the response window (1
// for v2's single in-flight request, replayWindow for v3 pipelines).
// Replays are answered from the cache; a sequence number at or below
// maxSeq whose response has been evicted is stale (zero stamps: nothing
// was handled on its behalf).
func (sess *session) dedupe(seq uint64, cap int, apply func() (byte, []byte, int64, int64)) (rsp cachedRsp, replayed, stale bool) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if seq != 0 && seq <= sess.maxSeq {
		if rsp, ok := sess.window[seq]; ok {
			return rsp, true, false
		}
		return cachedRsp{status: statusError, payload: []byte("remote: stale sequence number")}, false, true
	}
	status, out, start, end := apply()
	sess.maxSeq = seq
	if sess.window == nil {
		sess.window = make(map[uint64]cachedRsp, cap)
	}
	rsp = cachedRsp{status: status, start: start, end: end, payload: out}
	sess.window[seq] = rsp
	sess.order = append(sess.order, seq)
	for len(sess.order) > cap {
		delete(sess.window, sess.order[0])
		sess.order = sess.order[1:]
	}
	return rsp, false, false
}

// Server serves a kv.Store over TCP, speaking protocol v2 (one request
// per frame, in-order responses) and v3 (batched, pipelined requests
// with sequence-tagged responses) on the same listener; the client's
// hello selects the version per connection.
type Server struct {
	store kv.Store
	ln    net.Listener
	wg    sync.WaitGroup
	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  bool

	// start anchors the server-monotonic clock for trace handle stamps.
	start time.Time

	smu      sync.Mutex
	sessions map[uint64]*session

	// Wire-level counters (atomics: handlers run one goroutine per conn).
	accepted  atomic.Uint64 // connections accepted
	requests  atomic.Uint64 // requests decoded and answered
	batches   atomic.Uint64 // v3 batch frames decoded
	replays   atomic.Uint64 // reconnect replays answered from cache
	staleSeqs atomic.Uint64 // requests refused for stale sequence numbers
	oversized atomic.Uint64 // requests refused for exceeding maxFrame
	scans     atomic.Uint64 // range scans served
}

// Serve starts serving store on addr (e.g. "127.0.0.1:0") and returns
// once the listener is ready. Close shuts it down.
func Serve(store kv.Store, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		store:    store,
		ln:       ln,
		conns:    make(map[net.Conn]struct{}),
		sessions: make(map[uint64]*session),
		start:    time.Now(),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.done {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.accepted.Add(1)
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// getSession returns (creating if needed) the session for id, evicting
// the least-recently-used session when the table is full.
func (s *Server) getSession(id uint64) *session {
	s.smu.Lock()
	defer s.smu.Unlock()
	if sess, ok := s.sessions[id]; ok {
		sess.lastUsed = time.Now()
		return sess
	}
	if len(s.sessions) >= maxSessions {
		var oldestID uint64
		var oldest time.Time
		first := true
		for id, sess := range s.sessions {
			if first || sess.lastUsed.Before(oldest) {
				first = false
				oldestID, oldest = id, sess.lastUsed
			}
		}
		delete(s.sessions, oldestID)
	}
	sess := &session{lastUsed: time.Now()}
	s.sessions[id] = sess
	return sess
}

// apply executes one decoded request against the backing store with
// per-request panic recovery: a panicking engine fails the request, not
// the connection.
func (s *Server) apply(op byte, key, val []byte) (status byte, out []byte) {
	defer func() {
		if p := recover(); p != nil {
			status, out = statusError, []byte(fmt.Sprintf("store panic: %v", p))
		}
	}()
	switch op {
	case opGet:
		v, err := s.store.Get(key)
		switch {
		case err == nil:
			return statusOK, v
		case errors.Is(err, kv.ErrNotFound):
			return statusNotFound, nil
		default:
			return errStatus(err), []byte(err.Error())
		}
	case opPut:
		if err := s.store.Put(key, val); err != nil {
			return errStatus(err), []byte(err.Error())
		}
	case opMerge:
		if err := s.store.Merge(key, val); err != nil {
			return errStatus(err), []byte(err.Error())
		}
	case opDelete:
		if err := s.store.Delete(key); err != nil {
			return errStatus(err), []byte(err.Error())
		}
	case opScan:
		if len(key) != 2*kv.KeyLen {
			return statusError, []byte("remote: scan bounds must be 2 state keys")
		}
		lo, err := kv.DecodeStateKey(key[:kv.KeyLen])
		if err != nil {
			return statusError, []byte(err.Error())
		}
		hi, err := kv.DecodeStateKey(key[kv.KeyLen:])
		if err != nil {
			return statusError, []byte(err.Error())
		}
		entries, err := kv.ScanRange(s.store, lo, hi)
		if err != nil {
			return errStatus(err), []byte(err.Error())
		}
		out, err := encodeEntries(entries)
		if err != nil {
			return errStatus(err), []byte(err.Error())
		}
		s.scans.Add(1)
		return statusOK, out
	default:
		return statusError, []byte("unknown op")
	}
	return statusOK, nil
}

// nowNanos is the server-monotonic clock for trace handle stamps.
func (s *Server) nowNanos() int64 { return int64(time.Since(s.start)) }

// serve dispatches one decoded request through the session's exactly-once
// window and bumps the wire counters. On traced connections the apply
// window is stamped (and cached, so replays echo the original stamps);
// untraced connections skip the clock reads entirely.
func (s *Server) serve(sess *session, q request, window int, traced bool) cachedRsp {
	s.requests.Add(1)
	rsp, replayed, stale := sess.dedupe(q.seq, window, func() (byte, []byte, int64, int64) {
		var t0, t1 int64
		if traced {
			t0 = s.nowNanos()
		}
		status, out := s.apply(q.op, q.key, q.val)
		if traced {
			t1 = s.nowNanos()
		}
		return status, out, t0, t1
	})
	if replayed {
		s.replays.Add(1)
	}
	if stale {
		s.staleSeqs.Add(1)
	}
	return rsp
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	r := bufio.NewReaderSize(conn, 64<<10)
	w := bufio.NewWriterSize(conn, 64<<10)

	var hello [helloLen]byte
	if _, err := io.ReadFull(r, hello[:]); err != nil {
		return
	}
	if binary.LittleEndian.Uint32(hello[0:4]) != protoMagic {
		return // wrong magic: not a gadget client
	}
	sess := s.getSession(binary.LittleEndian.Uint64(hello[5:13]))
	// The version byte carries the trace-negotiation flag in its top
	// bit; mask it off before dispatching so tagged and untagged clients
	// of the same version share a handler.
	traced := hello[4]&helloTraceFlag != 0
	switch hello[4] & helloVersionMask {
	case protoV2:
		s.handleV2(r, w, sess)
	case protoV3:
		s.handleV3(r, w, sess, traced)
	}
}

// handleV2 is the one-request-per-frame loop: read a request, answer it,
// in order, one at a time.
func (s *Server) handleV2(r *bufio.Reader, w *bufio.Writer, sess *session) {
	var hdr [reqHdrLen]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		q := request{
			seq: binary.LittleEndian.Uint64(hdr[0:8]),
			op:  hdr[8],
		}
		keyLen := binary.LittleEndian.Uint32(hdr[9:13])
		valLen := binary.LittleEndian.Uint32(hdr[13:17])
		if keyLen > maxFrame || valLen > maxFrame {
			// Symmetric maxFrame enforcement: drain the declared payload
			// and refuse the request, keeping the connection usable.
			s.oversized.Add(1)
			if _, err := io.CopyN(io.Discard, r, int64(keyLen)+int64(valLen)); err != nil {
				return
			}
			if !writeResponseV2(w, statusError, []byte(ErrFrameTooLarge.Error())) {
				return
			}
			continue
		}
		buf := make([]byte, keyLen+valLen)
		if _, err := io.ReadFull(r, buf); err != nil {
			return
		}
		q.key, q.val = buf[:keyLen], buf[keyLen:]

		rsp := s.serve(sess, q, 1, false)
		if !writeResponseV2(w, rsp.status, rsp.payload) {
			return
		}
	}
}

// handleV3 is the batched, pipelined loop: read a batch frame, answer
// each request tagged with its sequence number, flush at batch end. The
// response order is whatever the server produces — v3 clients match by
// sequence number and must not assume it equals the request order. On
// traced connections every response carries the fixed trace trailer.
func (s *Server) handleV3(r *bufio.Reader, w *bufio.Writer, sess *session, traced bool) {
	for {
		reqs, err := readBatch(r)
		if err != nil {
			if errors.Is(err, ErrFrameTooLarge) {
				s.oversized.Add(1)
			}
			// A malformed batch cannot be resynchronized: drop the
			// connection and let the client reconnect and retransmit.
			return
		}
		s.batches.Add(1)
		for _, q := range reqs {
			rsp := s.serve(sess, q, replayWindow, traced)
			if !writeResponseV3(w, q.seq, rsp, traced) {
				return
			}
		}
		if w.Flush() != nil {
			return
		}
	}
}

func writeResponseV2(w *bufio.Writer, status byte, out []byte) bool {
	var rhdr [rspHdrLen]byte
	rhdr[0] = status
	binary.LittleEndian.PutUint32(rhdr[1:], uint32(len(out)))
	if _, err := w.Write(rhdr[:]); err != nil {
		return false
	}
	if _, err := w.Write(out); err != nil {
		return false
	}
	return w.Flush() == nil
}

// writeResponseV3 buffers one sequence-tagged response; the caller
// flushes at batch boundaries. The valLen header field counts only the
// payload — the trace trailer is a fixed-size extension the traced
// client knows to expect after it.
func writeResponseV3(w *bufio.Writer, seq uint64, rsp cachedRsp, traced bool) bool {
	var rhdr [rsp3HdrLen]byte
	binary.LittleEndian.PutUint64(rhdr[0:8], seq)
	rhdr[8] = rsp.status
	binary.LittleEndian.PutUint32(rhdr[9:13], uint32(len(rsp.payload)))
	if _, err := w.Write(rhdr[:]); err != nil {
		return false
	}
	if _, err := w.Write(rsp.payload); err != nil {
		return false
	}
	if traced {
		var tr [traceTrailerLen]byte
		binary.LittleEndian.PutUint64(tr[0:8], uint64(rsp.start))
		binary.LittleEndian.PutUint64(tr[8:16], uint64(rsp.end))
		if _, err := w.Write(tr[:]); err != nil {
			return false
		}
	}
	return true
}

// Metrics implements kv.Introspector: wire-level counters under
// "remote_server.*", merged with the backing store's metrics when it is
// introspectable.
func (s *Server) Metrics() map[string]int64 {
	s.mu.Lock()
	conns := int64(len(s.conns))
	s.mu.Unlock()
	s.smu.Lock()
	sessions := int64(len(s.sessions))
	s.smu.Unlock()
	m := map[string]int64{
		"remote_server.conns_accepted": int64(s.accepted.Load()),
		"remote_server.conns_live":     conns,
		"remote_server.sessions":       sessions,
		"remote_server.requests":       int64(s.requests.Load()),
		"remote_server.batches":        int64(s.batches.Load()),
		"remote_server.replays":        int64(s.replays.Load()),
		"remote_server.stale_seqs":     int64(s.staleSeqs.Load()),
		"remote_server.oversized":      int64(s.oversized.Load()),
		"remote_server.scans":          int64(s.scans.Load()),
	}
	for k, v := range kv.MetricsOf(s.store) {
		m[k] = v
	}
	return m
}

// Requests returns the number of requests this server has decoded and
// answered; the shard layer uses it to cross-check per-shard routing
// against client-side totals.
func (s *Server) Requests() uint64 { return s.requests.Load() }

// Close stops the listener, closes live connections, and waits for
// handlers to drain. The wrapped store is not closed.
func (s *Server) Close() error {
	s.mu.Lock()
	s.done = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}
