package remote

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gadget/internal/kv"
	"gadget/internal/tracing"
)

// PipelineOptions tunes a protocol-v3 client.
type PipelineOptions struct {
	// Timeout bounds transport progress: each batch write, and the wait
	// for the next response while requests are in flight (0 = none).
	Timeout time.Duration
	// Redials is how many consecutive failed reconnect attempts (or
	// connections that die without delivering a single response) the
	// client tolerates before failing the pending operations with a
	// transient, outcome-unknown error (0 = default 2, -1 = none).
	Redials int
	// Dialer overrides the transport dialer; nil uses net.Dial("tcp", addr).
	Dialer func(addr string) (net.Conn, error)
	// Depth bounds the number of in-flight requests (0 = default 64,
	// capped at 1024 so a full retransmission always fits the server's
	// replay window).
	Depth int
	// BatchBytes is the coalescing threshold: queued requests are packed
	// into batch frames of at most this payload size (0 = default 256 KiB,
	// capped at the 64 MiB frame limit).
	BatchBytes int
	// Traced negotiates per-op trace trailers at hello: the server
	// stamps its handling window on every response, and traced
	// operations attribute queue/wire/server stages to their
	// tracing.Ctx. Untraced peers are unaffected (the flag rides the
	// hello version byte's top bit).
	Traced bool
}

func (o PipelineOptions) withDefaults() PipelineOptions {
	if o.Redials == 0 {
		o.Redials = 2
	}
	if o.Redials < 0 {
		o.Redials = 0
	}
	if o.Depth <= 0 {
		o.Depth = 64
	}
	if o.Depth > maxPipelineDepth {
		o.Depth = maxPipelineDepth
	}
	if o.BatchBytes <= 0 {
		o.BatchBytes = 256 << 10
	}
	if o.BatchBytes > maxFrame {
		o.BatchBytes = maxFrame
	}
	return o
}

// presult is the outcome of one pipelined request.
type presult struct {
	status byte
	out    []byte
	err    error
}

// pcall is one in-flight pipelined request. done is buffered so the
// delivering goroutine never blocks on a caller.
//
// tc/enq/flushed carry trace state across the pipeline's goroutines;
// every hand-off happens under c.mu (takeBatch, takeCall,
// requeueInflight), which provides the happens-before edges the
// unsynchronized Ctx requires.
type pcall struct {
	seq      uint64
	op       byte
	key, val []byte
	done     chan presult

	tc      *tracing.Ctx // nil for untraced operations
	enq     int64        // tracer clock at enqueue (queue-stage start)
	flushed int64        // tracer clock at batch cut (wire-stage start)
}

// PipelinedClient is a protocol-v3 kv.Store backed by a remote Server.
// Unlike Client, it multiplexes many concurrent callers over one
// connection: operations are coalesced into batch frames by a writer
// loop, up to Depth requests ride the wire simultaneously, and responses
// complete in whatever order the server produces them, matched by
// sequence number. A single caller still observes synchronous kv.Store
// semantics — the pipeline fills only when multiple goroutines share the
// client, which is exactly the shard.Client deployment shape.
//
// Transport failures do not poison the client: the connection is
// re-dialed under the same session ID and every unanswered request is
// retransmitted in sequence order; the server answers duplicates from
// its per-session response window, keeping the stream exactly-once.
type PipelinedClient struct {
	addr      string
	opts      PipelineOptions
	sessionID uint64

	mu       sync.Mutex
	seq      uint64
	queue    []*pcall          // accepted, not yet written; ascending seq
	inflight map[uint64]*pcall // written on the live conn, awaiting response
	closed   bool

	slots    chan struct{} // pipeline window semaphore (capacity Depth)
	kick     chan struct{} // wake the writer: queue became non-empty
	closeCh  chan struct{}
	loopDone chan struct{}

	// Transport counters.
	requests  atomic.Uint64 // operations accepted
	dials     atomic.Uint64 // successful connects, initial included
	redials   atomic.Uint64 // reconnect attempts after a transport failure
	failures  atomic.Uint64 // operations failed with outcome unknown
	batches   atomic.Uint64 // batch frames written
	inflightG atomic.Int64  // operations currently inside the client
	scans     atomic.Uint64 // range scans issued
	snapshots atomic.Uint64 // fallback snapshots materialized
	iterOps   atomic.Int64  // entries stepped through snapshot iterators
}

var _ kv.Store = (*PipelinedClient)(nil)

// DialPipeline connects a protocol-v3 pipelined client. The initial
// connection is established eagerly (sharing the redial budget) so
// configuration errors surface immediately.
func DialPipeline(addr string, opts PipelineOptions) (*PipelinedClient, error) {
	opts = opts.withDefaults()
	id, err := newSessionID()
	if err != nil {
		return nil, err
	}
	c := &PipelinedClient{
		addr:      addr,
		opts:      opts,
		sessionID: id,
		inflight:  make(map[uint64]*pcall),
		slots:     make(chan struct{}, opts.Depth),
		kick:      make(chan struct{}, 1),
		closeCh:   make(chan struct{}),
		loopDone:  make(chan struct{}),
	}
	var conn net.Conn
	for attempt := 0; attempt <= opts.Redials; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * time.Millisecond)
		}
		if conn, err = c.connect(); err == nil {
			break
		}
	}
	if err != nil {
		return nil, err
	}
	go c.loop(conn)
	return c, nil
}

// Caps matches Client: server-translated merge and server-side scans;
// Snapshots stays false (Snapshot materializes the keyspace over the
// wire).
func (c *PipelinedClient) Caps() kv.Capabilities {
	return kv.Capabilities{NativeMerge: true, RangeScans: true}
}

func (c *PipelinedClient) dial() (net.Conn, error) {
	if c.opts.Dialer != nil {
		return c.opts.Dialer(c.addr)
	}
	return net.Dial("tcp", c.addr)
}

// connect dials and sends the v3 session hello.
func (c *PipelinedClient) connect() (net.Conn, error) {
	conn, err := c.dial()
	if err != nil {
		return nil, err
	}
	if c.opts.Timeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(c.opts.Timeout))
	}
	ver := protoV3
	if c.opts.Traced {
		ver |= helloTraceFlag
	}
	if _, err := conn.Write(appendHello(make([]byte, 0, helloLen), ver, c.sessionID)); err != nil {
		conn.Close()
		return nil, err
	}
	if c.opts.Timeout > 0 {
		conn.SetWriteDeadline(time.Time{})
	}
	c.dials.Add(1)
	return conn, nil
}

// loop owns the connection lifecycle: connect, serve until the transport
// breaks, requeue what was unanswered, reconnect. After Redials+1
// consecutive attempts without a single response, pending operations
// fail with a transient, outcome-unknown error (the v2 per-op contract,
// lifted to the pipeline).
func (c *PipelinedClient) loop(conn net.Conn) {
	defer close(c.loopDone)
	strikes := 0
	for {
		if conn == nil {
			if !c.waitWork() {
				break // closed
			}
			c.redials.Add(1)
			var err error
			if conn, err = c.connect(); err != nil {
				strikes++
				if strikes > c.opts.Redials {
					c.failPending(err)
					strikes = 0
					continue
				}
				if !c.sleep(time.Duration(strikes) * time.Millisecond) {
					break
				}
				continue
			}
		}
		got := c.serveConn(conn)
		conn = nil
		if c.isClosed() {
			break
		}
		if got {
			strikes = 0
			continue
		}
		strikes++
		if strikes > c.opts.Redials {
			c.failPending(fmt.Errorf("remote: connection to %s failed", c.addr))
			strikes = 0
		}
	}
	c.failAll(kv.ErrClosed)
}

// waitWork blocks until the queue is non-empty or the client closes.
func (c *PipelinedClient) waitWork() bool {
	for {
		c.mu.Lock()
		has := len(c.queue) > 0
		c.mu.Unlock()
		if has {
			return true
		}
		select {
		case <-c.closeCh:
			return false
		case <-c.kick:
		}
	}
}

// sleep pauses between reconnect attempts, abandoning the wait when the
// client closes.
func (c *PipelinedClient) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-c.closeCh:
		return false
	case <-t.C:
		return true
	}
}

func (c *PipelinedClient) isClosed() bool {
	select {
	case <-c.closeCh:
		return true
	default:
		return false
	}
}

// serveConn runs one connection: a reader goroutine completes responses
// by sequence number while this goroutine packs the queue into batch
// frames. Returns once the transport breaks or the client closes,
// reporting whether at least one response was delivered; unanswered
// requests are back in the queue when it returns.
func (c *PipelinedClient) serveConn(conn net.Conn) bool {
	defer conn.Close()
	w := bufio.NewWriterSize(conn, 256<<10)
	connErr := make(chan error, 1)
	var got atomic.Bool
	go c.readLoop(conn, &got, connErr)

	// Retransmit whatever a previous connection left unanswered, plus
	// anything that queued while reconnecting.
	if err := c.writeBatches(w, conn); err != nil {
		c.requeueInflight()
		return got.Load()
	}
	for {
		select {
		case <-c.closeCh:
			c.requeueInflight()
			return got.Load()
		case <-connErr:
			c.requeueInflight()
			return got.Load()
		case <-c.kick:
		}
		if err := c.writeBatches(w, conn); err != nil {
			c.requeueInflight()
			return got.Load()
		}
	}
}

// readLoop completes in-flight requests from sequence-tagged responses,
// in whatever order the server sends them.
func (c *PipelinedClient) readLoop(conn net.Conn, got *atomic.Bool, connErr chan<- error) {
	r := bufio.NewReaderSize(conn, 256<<10)
	var hdr [rsp3HdrLen]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			connErr <- err
			return
		}
		seq := binary.LittleEndian.Uint64(hdr[0:8])
		status := hdr[8]
		n := binary.LittleEndian.Uint32(hdr[9:13])
		if n > maxFrame {
			// Protocol violation; fail the addressed request outright (no
			// replay: the response would be oversized again) and drop the
			// connection.
			if call := c.takeCall(seq); call != nil {
				call.done <- presult{err: fmt.Errorf("%w: %d-byte response", ErrFrameTooLarge, n)}
			}
			connErr <- ErrFrameTooLarge
			return
		}
		out := make([]byte, n)
		if _, err := io.ReadFull(r, out); err != nil {
			connErr <- err
			return
		}
		// On a traced connection every response carries the fixed trace
		// trailer, whether or not the matching call is traced.
		var tStart, tEnd int64
		if c.opts.Traced {
			var tr [traceTrailerLen]byte
			if _, err := io.ReadFull(r, tr[:]); err != nil {
				connErr <- err
				return
			}
			var derr error
			if tStart, tEnd, derr = decodeTraceTrailer(tr[:]); derr != nil {
				connErr <- derr
				return
			}
		}
		call := c.takeCall(seq)
		if call != nil {
			if call.tc != nil {
				// The server's handle window is subtracted from the
				// flush→delivery window so wire and server stay disjoint.
				serverDur := tEnd - tStart
				call.tc.Add(tracing.StageServer, serverDur)
				call.tc.Add(tracing.StageWire, call.tc.Now()-call.flushed-serverDur)
			}
			got.Store(true)
			call.done <- presult{status: status, out: out}
		}
		if c.opts.Timeout > 0 {
			c.mu.Lock()
			pending := len(c.inflight)
			c.mu.Unlock()
			if pending > 0 {
				conn.SetReadDeadline(time.Now().Add(c.opts.Timeout))
			} else {
				conn.SetReadDeadline(time.Time{})
			}
		}
	}
}

// takeCall removes and returns the in-flight request for seq, or nil
// when seq is unknown (already requeued for retransmission, or a
// duplicate completion).
func (c *PipelinedClient) takeCall(seq uint64) *pcall {
	c.mu.Lock()
	defer c.mu.Unlock()
	call, ok := c.inflight[seq]
	if !ok {
		return nil
	}
	delete(c.inflight, seq)
	return call
}

// writeBatches drains the queue into batch frames and flushes. Requests
// move to the in-flight table before their bytes hit the wire so the
// reader can match early responses.
func (c *PipelinedClient) writeBatches(w *bufio.Writer, conn net.Conn) error {
	wrote := false
	for {
		batch := c.takeBatch()
		if len(batch) == 0 {
			break
		}
		wrote = true
		c.batches.Add(1)
		if c.opts.Timeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(c.opts.Timeout))
		}
		payload := 0
		for _, call := range batch {
			payload += reqHdrLen + len(call.key) + len(call.val)
		}
		var bhdr [batchHdrLen]byte
		binary.LittleEndian.PutUint32(bhdr[0:4], uint32(len(batch)))
		binary.LittleEndian.PutUint32(bhdr[4:8], uint32(payload))
		if _, err := w.Write(bhdr[:]); err != nil {
			return err
		}
		for _, call := range batch {
			var hdr [reqHdrLen]byte
			binary.LittleEndian.PutUint64(hdr[0:8], call.seq)
			hdr[8] = call.op
			binary.LittleEndian.PutUint32(hdr[9:13], uint32(len(call.key)))
			binary.LittleEndian.PutUint32(hdr[13:17], uint32(len(call.val)))
			if _, err := w.Write(hdr[:]); err != nil {
				return err
			}
			if _, err := w.Write(call.key); err != nil {
				return err
			}
			if _, err := w.Write(call.val); err != nil {
				return err
			}
		}
	}
	if !wrote {
		return nil
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if c.opts.Timeout > 0 {
		conn.SetWriteDeadline(time.Time{})
		c.mu.Lock()
		pending := len(c.inflight)
		c.mu.Unlock()
		if pending > 0 {
			conn.SetReadDeadline(time.Now().Add(c.opts.Timeout))
		}
	}
	return nil
}

// takeBatch moves a prefix of the queue into the in-flight table,
// bounded by BatchBytes and maxBatchOps. A single request larger than
// BatchBytes forms its own batch (individual requests are already
// bounded by maxFrame).
func (c *PipelinedClient) takeBatch() []*pcall {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.queue) == 0 {
		return nil
	}
	n, size := 0, 0
	for _, call := range c.queue {
		sz := reqHdrLen + len(call.key) + len(call.val)
		if n > 0 && (size+sz > c.opts.BatchBytes || n == maxBatchOps) {
			break
		}
		n++
		size += sz
		if size >= c.opts.BatchBytes {
			break
		}
	}
	batch := make([]*pcall, n)
	copy(batch, c.queue[:n])
	for _, call := range batch {
		c.inflight[call.seq] = call
		if call.tc != nil {
			// Queue stage ends at the batch cut; everything from here to
			// response delivery (including the write syscall) is wire.
			now := call.tc.Now()
			call.tc.Add(tracing.StageQueue, now-call.enq)
			call.flushed = now
		}
	}
	if n == len(c.queue) {
		c.queue = nil
	} else {
		c.queue = c.queue[n:]
	}
	return batch
}

// requeueInflight moves unanswered in-flight requests back to the front
// of the queue, in sequence order, for retransmission on the next
// connection. The server must observe ascending sequence numbers, and
// every queued request carries a later sequence number than any
// in-flight one (batches are taken from the queue front).
func (c *PipelinedClient) requeueInflight() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.inflight) == 0 {
		return
	}
	calls := make([]*pcall, 0, len(c.inflight))
	for seq, call := range c.inflight {
		if call.tc != nil {
			// The dead connection's unanswered window counts as wire
			// time; queue accounting restarts at the requeue.
			now := call.tc.Now()
			call.tc.Add(tracing.StageWire, now-call.flushed)
			call.enq = now
		}
		calls = append(calls, call)
		delete(c.inflight, seq)
	}
	sort.Slice(calls, func(i, j int) bool { return calls[i].seq < calls[j].seq })
	c.queue = append(calls, c.queue...)
}

// failPending fails every accepted-but-unanswered operation with a
// transient, outcome-unknown error: requests may or may not have been
// applied by the server.
func (c *PipelinedClient) failPending(cause error) {
	err := kv.UnknownOutcomeError(kv.TransientError(
		fmt.Errorf("remote: pipeline failed after %d attempts: %w", c.opts.Redials+1, cause)))
	c.drainPending(presult{status: statusError, err: err}, true)
}

// failAll fails pending operations at shutdown.
func (c *PipelinedClient) failAll(cause error) {
	c.drainPending(presult{status: statusError, err: cause}, false)
}

func (c *PipelinedClient) drainPending(res presult, countFailures bool) {
	c.mu.Lock()
	calls := make([]*pcall, 0, len(c.queue)+len(c.inflight))
	calls = append(calls, c.queue...)
	c.queue = nil
	for seq, call := range c.inflight {
		calls = append(calls, call)
		delete(c.inflight, seq)
	}
	c.mu.Unlock()
	for _, call := range calls {
		if countFailures {
			c.failures.Add(1)
		}
		call.done <- res
	}
}

// roundTrip submits one operation to the pipeline and waits for its
// response. A non-nil trace context attributes the op's queue, wire,
// and server stages; the queue stage starts here, so pipeline
// backpressure (waiting for an in-flight slot) counts as queue time.
func (c *PipelinedClient) roundTrip(tc *tracing.Ctx, op byte, key, val []byte) ([]byte, byte, error) {
	if reqHdrLen+len(key)+len(val) > maxFrame {
		return nil, statusError, ErrFrameTooLarge
	}
	var enq int64
	if tc != nil {
		enq = tc.Now()
	}
	select {
	case c.slots <- struct{}{}:
	case <-c.closeCh:
		return nil, statusError, kv.ErrClosed
	}
	defer func() { <-c.slots }()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, statusError, kv.ErrClosed
	}
	c.seq++
	call := &pcall{seq: c.seq, op: op, key: key, val: val, done: make(chan presult, 1), tc: tc, enq: enq}
	c.queue = append(c.queue, call)
	c.mu.Unlock()
	c.requests.Add(1)
	c.inflightG.Add(1)
	select {
	case c.kick <- struct{}{}:
	default:
	}
	res := <-call.done
	c.inflightG.Add(-1)
	return res.out, res.status, res.err
}

// Metrics implements kv.Introspector: client-side transport counters
// under "remote.*", including the v3 pipeline's batch and in-flight
// accounting.
func (c *PipelinedClient) Metrics() map[string]int64 {
	return map[string]int64{
		"remote.requests":  int64(c.requests.Load()),
		"remote.dials":     int64(c.dials.Load()),
		"remote.redials":   int64(c.redials.Load()),
		"remote.failures":  int64(c.failures.Load()),
		"remote.batches":   int64(c.batches.Load()),
		"remote.inflight":  c.inflightG.Load(),
		"remote.scans":     int64(c.scans.Load()),
		"remote.snapshots": int64(c.snapshots.Load()),
		"remote.iter_ops":  c.iterOps.Load(),
	}
}

// Get implements kv.Store.
func (c *PipelinedClient) Get(key []byte) ([]byte, error) { return c.get(nil, key) }

func (c *PipelinedClient) get(tc *tracing.Ctx, key []byte) ([]byte, error) {
	out, status, err := c.roundTrip(tc, opGet, key, nil)
	if err != nil {
		return nil, err
	}
	switch status {
	case statusOK:
		return out, nil
	case statusNotFound:
		return nil, kv.ErrNotFound
	default:
		return nil, remoteError(status, out)
	}
}

// Put implements kv.Store.
func (c *PipelinedClient) Put(key, value []byte) error { return c.write(nil, opPut, key, value) }

// Merge implements kv.Store.
func (c *PipelinedClient) Merge(key, operand []byte) error {
	return c.write(nil, opMerge, key, operand)
}

// Delete implements kv.Store.
func (c *PipelinedClient) Delete(key []byte) error { return c.write(nil, opDelete, key, nil) }

// ScanRange implements kv.RangeScanner with a single server-side scan
// frame, like Client.ScanRange.
func (c *PipelinedClient) ScanRange(lo, hi kv.StateKey) ([]kv.Entry, error) {
	return c.scanRange(nil, lo, hi)
}

func (c *PipelinedClient) scanRange(tc *tracing.Ctx, lo, hi kv.StateKey) ([]kv.Entry, error) {
	bounds := hi.Encode(lo.Encode(make([]byte, 0, 2*kv.KeyLen)))
	out, status, err := c.roundTrip(tc, opScan, bounds, nil)
	if err != nil {
		return nil, err
	}
	if status != statusOK {
		return nil, remoteError(status, out)
	}
	c.scans.Add(1)
	return decodeEntries(out)
}

// DoTraced implements kv.Traceable: the op rides the pipeline exactly
// like its plain twin, with queue/wire/server stages attributed to tc
// (server stamps require the connection to have negotiated Traced).
func (c *PipelinedClient) DoTraced(tc *tracing.Ctx, op kv.TracedOp) (kv.TracedResult, error) {
	switch op.Op {
	case kv.OpGet, kv.OpFGet:
		v, err := c.get(tc, op.Key)
		return kv.TracedResult{Val: v}, err
	case kv.OpPut:
		return kv.TracedResult{}, c.write(tc, opPut, op.Key, op.Val)
	case kv.OpMerge:
		return kv.TracedResult{}, c.write(tc, opMerge, op.Key, op.Val)
	case kv.OpDelete:
		return kv.TracedResult{}, c.write(tc, opDelete, op.Key, nil)
	case kv.OpScan:
		ents, err := c.scanRange(tc, op.Lo, op.Hi)
		return kv.TracedResult{Entries: ents}, err
	default:
		return kv.TracedResult{}, fmt.Errorf("remote: traced dispatch: unsupported op %v", op.Op)
	}
}

var _ kv.Traceable = (*PipelinedClient)(nil)

// Snapshot implements kv.Snapshotter via the stop-the-world fallback,
// like Client.Snapshot.
func (c *PipelinedClient) Snapshot() (kv.Snapshot, error) {
	entries, err := c.ScanRange(kv.StateKey{}, kv.MaxStateKey)
	if err != nil {
		return nil, err
	}
	snap := kv.NewFallbackSnapshot(entries)
	snap.CountIterOps(&c.iterOps)
	c.snapshots.Add(1)
	return snap, nil
}

func (c *PipelinedClient) write(tc *tracing.Ctx, op byte, key, val []byte) error {
	out, status, err := c.roundTrip(tc, op, key, val)
	if err != nil {
		return err
	}
	if status != statusOK {
		return remoteError(status, out)
	}
	return nil
}

// Close shuts the pipeline down: pending operations fail with
// kv.ErrClosed and the connection is torn down.
func (c *PipelinedClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	close(c.closeCh)
	<-c.loopDone
	return nil
}
