package remote

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"gadget/internal/kv"
)

// Wire-level constants shared by both protocol versions. See the package
// comment for the frame layouts.
const (
	opGet byte = iota
	opPut
	opMerge
	opDelete
	// opScan requests a consistent bounded range scan. The request key
	// field carries both bounds (lo || hi, 2 x kv.KeyLen bytes); the
	// response value is the serialized entry list:
	// repeated [key 16B | valLen u32 | val].
	opScan

	statusOK        byte = 0
	statusNotFound  byte = 1
	statusError     byte = 2
	statusTransient byte = 3

	protoMagic uint32 = 0x74676467 // "gdgt"
	protoV2    byte   = 2
	protoV3    byte   = 3

	// The hello version byte carries the protocol version in its low
	// seven bits plus a trace-negotiation flag in the top bit: a client
	// setting helloTraceFlag asks the server to append a fixed
	// traceTrailerLen-byte trailer (handle-start, handle-end — both
	// server-monotonic nanoseconds) after every v3 response payload.
	// Untagged v3 and v2 clients are served byte-identically to before,
	// so trace bytes only flow where both ends understand them.
	helloVersionMask byte = 0x7f
	helloTraceFlag   byte = 0x80

	helloLen    = 13
	reqHdrLen   = 17
	rspHdrLen   = 5  // v2: status u8 | valLen u32
	batchHdrLen = 8  // v3: count u32 | payloadLen u32
	rsp3HdrLen  = 13 // v3: seq u64 | status u8 | valLen u32

	// traceTrailerLen is the fixed response-trailer extension on traced
	// v3 connections: handle-start u64 | handle-end u64 (server
	// monotonic ns). Only the difference is meaningful to the client, so
	// client and server clock domains never mix.
	traceTrailerLen = 16
	maxBatchOps     = 65536
	replayWindow    = 4096 // cached responses per session; bounds v3 pipeline depth

	// maxFrame bounds key, value, and response payload length; both ends
	// enforce it symmetrically with ErrFrameTooLarge. Under v3 it also
	// bounds a whole batch payload, so a single request record (header +
	// key + value) must fit in maxFrame.
	maxFrame = 64 << 20

	// maxSessions bounds the server's reconnect-replay session table.
	maxSessions = 4096

	// maxPipelineDepth caps a v3 client's in-flight window. It must stay
	// well under replayWindow so a reconnecting client's full
	// retransmission is always answerable from the server's cache.
	maxPipelineDepth = 1024
)

// Typed protocol errors.
var (
	// ErrFrameTooLarge reports a key, value, batch, or response exceeding
	// maxFrame. On the client it fails the operation before anything is
	// sent; on the server the oversized payload is drained and refused.
	ErrFrameTooLarge = fmt.Errorf("remote: frame exceeds %d-byte protocol limit", maxFrame)
	// ErrProtocol reports a malformed or version-mismatched peer.
	ErrProtocol = errors.New("remote: protocol error")
)

// request is one decoded request record, identical between v2 (one per
// frame) and v3 (many per batch frame).
type request struct {
	seq      uint64
	op       byte
	key, val []byte
}

// size returns the encoded length of the record.
func (q request) size() int { return reqHdrLen + len(q.key) + len(q.val) }

// appendHello appends a hello frame for the given version.
func appendHello(dst []byte, version byte, sessionID uint64) []byte {
	var h [helloLen]byte
	binary.LittleEndian.PutUint32(h[0:4], protoMagic)
	h[4] = version
	binary.LittleEndian.PutUint64(h[5:13], sessionID)
	return append(dst, h[:]...)
}

// appendTraceTrailer appends the fixed trace trailer (handle-start,
// handle-end in server-monotonic nanoseconds) to dst.
func appendTraceTrailer(dst []byte, start, end int64) []byte {
	var tr [traceTrailerLen]byte
	binary.LittleEndian.PutUint64(tr[0:8], uint64(start))
	binary.LittleEndian.PutUint64(tr[8:16], uint64(end))
	return append(dst, tr[:]...)
}

// decodeTraceTrailer parses a trace trailer. A short buffer or a
// trailer whose end precedes its start is a protocol error (zero
// stamps — an untraced or stale server response — are valid).
func decodeTraceTrailer(b []byte) (start, end int64, err error) {
	if len(b) != traceTrailerLen {
		return 0, 0, fmt.Errorf("%w: trace trailer is %d bytes, want %d", ErrProtocol, len(b), traceTrailerLen)
	}
	start = int64(binary.LittleEndian.Uint64(b[0:8]))
	end = int64(binary.LittleEndian.Uint64(b[8:16]))
	if start < 0 || end < start {
		return 0, 0, fmt.Errorf("%w: trace trailer stamps out of order", ErrProtocol)
	}
	return start, end, nil
}

// appendRequest appends one request record (the shared v2/v3 layout).
func appendRequest(dst []byte, q request) []byte {
	var hdr [reqHdrLen]byte
	binary.LittleEndian.PutUint64(hdr[0:8], q.seq)
	hdr[8] = q.op
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(len(q.key)))
	binary.LittleEndian.PutUint32(hdr[13:17], uint32(len(q.val)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, q.key...)
	return append(dst, q.val...)
}

// appendBatch appends a v3 batch frame carrying reqs. The caller must
// have bounded the batch (see batchFits): count ≤ maxBatchOps and total
// payload ≤ maxFrame.
func appendBatch(dst []byte, reqs []request) []byte {
	payload := 0
	for _, q := range reqs {
		payload += q.size()
	}
	var hdr [batchHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(reqs)))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(payload))
	dst = append(dst, hdr[:]...)
	for _, q := range reqs {
		dst = appendRequest(dst, q)
	}
	return dst
}

// decodeBatchPayload parses the payload of a v3 batch frame that
// declared count records. It rejects trailing garbage, truncated
// records, and length fields overrunning the payload; request key/value
// slices alias b.
func decodeBatchPayload(b []byte, count int) ([]request, error) {
	reqs := make([]request, 0, count)
	for i := 0; i < count; i++ {
		if len(b) < reqHdrLen {
			return nil, fmt.Errorf("%w: truncated batch record %d", ErrProtocol, i)
		}
		q := request{
			seq: binary.LittleEndian.Uint64(b[0:8]),
			op:  b[8],
		}
		keyLen := binary.LittleEndian.Uint32(b[9:13])
		valLen := binary.LittleEndian.Uint32(b[13:17])
		b = b[reqHdrLen:]
		if uint64(keyLen)+uint64(valLen) > uint64(len(b)) {
			return nil, fmt.Errorf("%w: batch record %d overruns payload", ErrProtocol, i)
		}
		q.key = b[:keyLen:keyLen]
		q.val = b[keyLen : keyLen+valLen : keyLen+valLen]
		b = b[keyLen+valLen:]
		reqs = append(reqs, q)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after batch", ErrProtocol, len(b))
	}
	return reqs, nil
}

// readBatch reads one v3 batch frame: header, bounds checks, payload,
// records. Returned request slices alias the returned payload buffer.
func readBatch(r io.Reader) ([]request, error) {
	var hdr [batchHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint32(hdr[0:4])
	payloadLen := binary.LittleEndian.Uint32(hdr[4:8])
	if count == 0 || count > maxBatchOps {
		return nil, fmt.Errorf("%w: batch count %d", ErrProtocol, count)
	}
	if payloadLen > maxFrame {
		return nil, fmt.Errorf("%w: %d-byte batch", ErrFrameTooLarge, payloadLen)
	}
	if uint64(payloadLen) < uint64(count)*reqHdrLen {
		return nil, fmt.Errorf("%w: batch payload %d too small for %d records", ErrProtocol, payloadLen, count)
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return decodeBatchPayload(payload, int(count))
}

// encodeEntries serializes a scan result as repeated
// [key 16B | valLen u32 | val], enforcing the frame limit.
func encodeEntries(entries []kv.Entry) ([]byte, error) {
	size := 0
	for _, e := range entries {
		size += kv.KeyLen + 4 + len(e.Value)
	}
	if size > maxFrame {
		return nil, fmt.Errorf("%w: %d-byte scan result", ErrFrameTooLarge, size)
	}
	out := make([]byte, 0, size)
	var vlen [4]byte
	for _, e := range entries {
		out = e.Key.Encode(out)
		binary.LittleEndian.PutUint32(vlen[:], uint32(len(e.Value)))
		out = append(out, vlen[:]...)
		out = append(out, e.Value...)
	}
	return out, nil
}

// decodeEntries parses an opScan response payload.
func decodeEntries(b []byte) ([]kv.Entry, error) {
	var out []kv.Entry
	for len(b) > 0 {
		if len(b) < kv.KeyLen+4 {
			return nil, fmt.Errorf("%w: truncated scan entry", ErrProtocol)
		}
		sk, err := kv.DecodeStateKey(b[:kv.KeyLen])
		if err != nil {
			return nil, err
		}
		n := binary.LittleEndian.Uint32(b[kv.KeyLen : kv.KeyLen+4])
		b = b[kv.KeyLen+4:]
		if uint64(n) > uint64(len(b)) {
			return nil, fmt.Errorf("%w: scan entry value overruns frame", ErrProtocol)
		}
		out = append(out, kv.Entry{Key: sk, Value: append([]byte(nil), b[:n]...)})
		b = b[n:]
	}
	return out, nil
}

// remoteError converts a non-OK wire status into a typed error.
func remoteError(status byte, out []byte) error {
	if status == statusTransient {
		// The server's store refused the op before applying it; safe to
		// retry, including merges.
		return kv.TransientError(fmt.Errorf("remote: %s", out))
	}
	return fmt.Errorf("remote: %s", out)
}

// errStatus maps a backend error to a wire status, preserving the
// transient classification so the client's resilience layer can retry.
// Transient backend failures follow the fail-before-apply contract
// (kv.ErrInjectedFault and friends), so replaying them is safe.
func errStatus(err error) byte {
	if kv.Transient(err) {
		return statusTransient
	}
	return statusError
}
