// Package remote implements the paper's §8 extension: external state
// management. A Server exposes any kv.Store over TCP, and two client
// flavours implement kv.Store over that wire — so the same harness that
// drives embedded stores can evaluate a decoupled compute/state
// deployment (multiple workload generator instances against one shared
// remote store, or a sharded fleet of them; see package shard).
//
// The package is split into three layers:
//
//   - protocol.go — the wire codec: frame layouts, size limits, and the
//     encode/decode helpers shared by both ends and both versions.
//   - server.go — Server, which speaks both protocol versions and keeps
//     the per-session replay state that makes reconnects exactly-once.
//   - client.go — Client, the protocol-v2 synchronous client (one
//     request in flight per connection).
//   - pipeline.go — PipelinedClient, the protocol-v3 client: many
//     in-flight requests per connection, coalesced into batch frames,
//     with responses matched by sequence number in any order.
//
// Protocol v2 (all integers little-endian):
//
//	hello:    magic u32 | version u8 (=2) | sessionID u64
//	request:  seq u64 | op u8 | keyLen u32 | valLen u32 | key | val
//	response: status u8 | valLen u32 | val
//
// Protocol v3 reuses the hello and request record layouts but wraps
// requests in batch frames and tags every response with the sequence
// number it answers, so responses may complete out of order:
//
//	hello:    magic u32 | version u8 (=3) | sessionID u64
//	batch:    count u32 | payloadLen u32 | count × request
//	response: seq u64 | status u8 | valLen u32 | val
//
// status: 0 = ok, 1 = not found, 2 = error (val holds the message),
// 3 = transient error (retry-safe: the store did not apply the op).
//
// The session/sequence layer makes reconnect replay exactly-once under
// both versions: a client re-dials a broken connection, re-sends its
// hello with the same session ID, and retransmits every request it has
// not seen answered, in sequence order; the server deduplicates by
// sequence against a bounded window of cached responses and answers
// replays from the cache instead of re-applying them. A request the
// client ultimately cannot confirm surfaces as a transient,
// outcome-unknown error, which the kv resilience layer retries only for
// idempotent ops.
package remote
