// Package remote implements the paper's §8 extension: external state
// management. A Server exposes any kv.Store over TCP with a compact
// length-prefixed binary protocol, and Client implements kv.Store over
// that protocol — so the same harness that drives embedded stores can
// evaluate a decoupled compute/state deployment (multiple workload
// generator instances against one shared remote store).
//
// Protocol v2 (all integers little-endian):
//
//	hello:    magic u32 | version u8 | sessionID u64
//	request:  seq u64 | op u8 | keyLen u32 | valLen u32 | key | val
//	response: status u8 | valLen u32 | val
//
// status: 0 = ok, 1 = not found, 2 = error (val holds the message),
// 3 = transient error (retry-safe: the store did not apply the op).
//
// The session/sequence layer makes reconnect replay exactly-once: the
// client re-dials a broken connection, re-sends its hello with the same
// session ID, and replays the in-flight request with the same sequence
// number; the server deduplicates by sequence and answers replays from a
// cached response instead of re-applying them. A request the client
// ultimately cannot confirm surfaces as a transient, outcome-unknown
// error, which the kv resilience layer retries only for idempotent ops.
package remote

import (
	"bufio"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gadget/internal/kv"
)

const (
	opGet byte = iota
	opPut
	opMerge
	opDelete
	// opScan requests a consistent bounded range scan. The request key
	// field carries both bounds (lo || hi, 2 x kv.KeyLen bytes); the
	// response value is the serialized entry list:
	// repeated [key 16B | valLen u32 | val].
	opScan

	statusOK        byte = 0
	statusNotFound  byte = 1
	statusError     byte = 2
	statusTransient byte = 3

	protoMagic   uint32 = 0x74676467 // "gdgt"
	protoVersion byte   = 2

	helloLen  = 13
	reqHdrLen = 17
	rspHdrLen = 5

	// maxFrame bounds key, value, and response payload length; both ends
	// enforce it symmetrically with ErrFrameTooLarge.
	maxFrame = 64 << 20

	// maxSessions bounds the server's reconnect-replay session table.
	maxSessions = 4096
)

// Typed protocol errors.
var (
	// ErrFrameTooLarge reports a key, value, or response exceeding
	// maxFrame. On the client it fails the operation before anything is
	// sent; on the server the oversized payload is drained and refused.
	ErrFrameTooLarge = fmt.Errorf("remote: frame exceeds %d-byte protocol limit", maxFrame)
	// ErrProtocol reports a malformed or version-mismatched peer.
	ErrProtocol = errors.New("remote: protocol error")
)

// session is the server-side replay state of one client session: the
// last applied sequence number and its cached response.
type session struct {
	mu       sync.Mutex
	lastSeq  uint64
	lastRsp  []byte // status byte + payload
	lastUsed time.Time
}

// Server serves a kv.Store over TCP.
type Server struct {
	store kv.Store
	ln    net.Listener
	wg    sync.WaitGroup
	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  bool

	smu      sync.Mutex
	sessions map[uint64]*session

	// Wire-level counters (atomics: handlers run one goroutine per conn).
	accepted  atomic.Uint64 // connections accepted
	requests  atomic.Uint64 // requests decoded and answered
	replays   atomic.Uint64 // reconnect replays answered from cache
	staleSeqs atomic.Uint64 // requests refused for stale sequence numbers
	oversized atomic.Uint64 // requests refused for exceeding maxFrame
	scans     atomic.Uint64 // range scans served
}

// Serve starts serving store on addr (e.g. "127.0.0.1:0") and returns
// once the listener is ready. Close shuts it down.
func Serve(store kv.Store, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		store:    store,
		ln:       ln,
		conns:    make(map[net.Conn]struct{}),
		sessions: make(map[uint64]*session),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.done {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.accepted.Add(1)
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// getSession returns (creating if needed) the session for id, evicting
// the least-recently-used session when the table is full.
func (s *Server) getSession(id uint64) *session {
	s.smu.Lock()
	defer s.smu.Unlock()
	if sess, ok := s.sessions[id]; ok {
		sess.lastUsed = time.Now()
		return sess
	}
	if len(s.sessions) >= maxSessions {
		var oldestID uint64
		var oldest time.Time
		first := true
		for id, sess := range s.sessions {
			if first || sess.lastUsed.Before(oldest) {
				first = false
				oldestID, oldest = id, sess.lastUsed
			}
		}
		delete(s.sessions, oldestID)
	}
	sess := &session{lastUsed: time.Now()}
	s.sessions[id] = sess
	return sess
}

// apply executes one decoded request against the backing store with
// per-request panic recovery: a panicking engine fails the request, not
// the connection.
func (s *Server) apply(op byte, key, val []byte) (status byte, out []byte) {
	defer func() {
		if p := recover(); p != nil {
			status, out = statusError, []byte(fmt.Sprintf("store panic: %v", p))
		}
	}()
	switch op {
	case opGet:
		v, err := s.store.Get(key)
		switch {
		case err == nil:
			return statusOK, v
		case errors.Is(err, kv.ErrNotFound):
			return statusNotFound, nil
		default:
			return errStatus(err), []byte(err.Error())
		}
	case opPut:
		if err := s.store.Put(key, val); err != nil {
			return errStatus(err), []byte(err.Error())
		}
	case opMerge:
		if err := s.store.Merge(key, val); err != nil {
			return errStatus(err), []byte(err.Error())
		}
	case opDelete:
		if err := s.store.Delete(key); err != nil {
			return errStatus(err), []byte(err.Error())
		}
	case opScan:
		if len(key) != 2*kv.KeyLen {
			return statusError, []byte("remote: scan bounds must be 2 state keys")
		}
		lo, err := kv.DecodeStateKey(key[:kv.KeyLen])
		if err != nil {
			return statusError, []byte(err.Error())
		}
		hi, err := kv.DecodeStateKey(key[kv.KeyLen:])
		if err != nil {
			return statusError, []byte(err.Error())
		}
		entries, err := kv.ScanRange(s.store, lo, hi)
		if err != nil {
			return errStatus(err), []byte(err.Error())
		}
		out, err := encodeEntries(entries)
		if err != nil {
			return errStatus(err), []byte(err.Error())
		}
		s.scans.Add(1)
		return statusOK, out
	default:
		return statusError, []byte("unknown op")
	}
	return statusOK, nil
}

// encodeEntries serializes a scan result as repeated
// [key 16B | valLen u32 | val], enforcing the frame limit.
func encodeEntries(entries []kv.Entry) ([]byte, error) {
	size := 0
	for _, e := range entries {
		size += kv.KeyLen + 4 + len(e.Value)
	}
	if size > maxFrame {
		return nil, fmt.Errorf("%w: %d-byte scan result", ErrFrameTooLarge, size)
	}
	out := make([]byte, 0, size)
	var vlen [4]byte
	for _, e := range entries {
		out = e.Key.Encode(out)
		binary.LittleEndian.PutUint32(vlen[:], uint32(len(e.Value)))
		out = append(out, vlen[:]...)
		out = append(out, e.Value...)
	}
	return out, nil
}

// decodeEntries parses an opScan response payload.
func decodeEntries(b []byte) ([]kv.Entry, error) {
	var out []kv.Entry
	for len(b) > 0 {
		if len(b) < kv.KeyLen+4 {
			return nil, fmt.Errorf("%w: truncated scan entry", ErrProtocol)
		}
		sk, err := kv.DecodeStateKey(b[:kv.KeyLen])
		if err != nil {
			return nil, err
		}
		n := binary.LittleEndian.Uint32(b[kv.KeyLen : kv.KeyLen+4])
		b = b[kv.KeyLen+4:]
		if uint64(n) > uint64(len(b)) {
			return nil, fmt.Errorf("%w: scan entry value overruns frame", ErrProtocol)
		}
		out = append(out, kv.Entry{Key: sk, Value: append([]byte(nil), b[:n]...)})
		b = b[n:]
	}
	return out, nil
}

// errStatus maps a backend error to a wire status, preserving the
// transient classification so the client's resilience layer can retry.
// Transient backend failures follow the fail-before-apply contract
// (kv.ErrInjectedFault and friends), so replaying them is safe.
func errStatus(err error) byte {
	if kv.Transient(err) {
		return statusTransient
	}
	return statusError
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	r := bufio.NewReaderSize(conn, 64<<10)
	w := bufio.NewWriterSize(conn, 64<<10)

	var hello [helloLen]byte
	if _, err := io.ReadFull(r, hello[:]); err != nil {
		return
	}
	if binary.LittleEndian.Uint32(hello[0:4]) != protoMagic || hello[4] != protoVersion {
		return // wrong magic or version: not a v2 client
	}
	sess := s.getSession(binary.LittleEndian.Uint64(hello[5:13]))

	var hdr [reqHdrLen]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		seq := binary.LittleEndian.Uint64(hdr[0:8])
		op := hdr[8]
		keyLen := binary.LittleEndian.Uint32(hdr[9:13])
		valLen := binary.LittleEndian.Uint32(hdr[13:17])
		if keyLen > maxFrame || valLen > maxFrame {
			// Symmetric maxFrame enforcement: drain the declared payload
			// and refuse the request, keeping the connection usable.
			s.oversized.Add(1)
			if _, err := io.CopyN(io.Discard, r, int64(keyLen)+int64(valLen)); err != nil {
				return
			}
			if !writeResponse(w, statusError, []byte(ErrFrameTooLarge.Error())) {
				return
			}
			continue
		}
		buf := make([]byte, keyLen+valLen)
		if _, err := io.ReadFull(r, buf); err != nil {
			return
		}
		key, val := buf[:keyLen], buf[keyLen:]

		s.requests.Add(1)
		sess.mu.Lock()
		var status byte
		var out []byte
		switch {
		case seq == sess.lastSeq && seq != 0:
			// Reconnect replay of the in-flight request: answer from the
			// cache without re-applying (exactly-once).
			s.replays.Add(1)
			status, out = sess.lastRsp[0], sess.lastRsp[1:]
		case seq < sess.lastSeq:
			s.staleSeqs.Add(1)
			status, out = statusError, []byte("remote: stale sequence number")
		default:
			status, out = s.apply(op, key, val)
			sess.lastSeq = seq
			rsp := make([]byte, 1+len(out))
			rsp[0] = status
			copy(rsp[1:], out)
			sess.lastRsp = rsp
		}
		sess.mu.Unlock()

		if !writeResponse(w, status, out) {
			return
		}
	}
}

func writeResponse(w *bufio.Writer, status byte, out []byte) bool {
	var rhdr [rspHdrLen]byte
	rhdr[0] = status
	binary.LittleEndian.PutUint32(rhdr[1:], uint32(len(out)))
	if _, err := w.Write(rhdr[:]); err != nil {
		return false
	}
	if _, err := w.Write(out); err != nil {
		return false
	}
	return w.Flush() == nil
}

// Metrics implements kv.Introspector: wire-level counters under
// "remote_server.*", merged with the backing store's metrics when it is
// introspectable.
func (s *Server) Metrics() map[string]int64 {
	s.mu.Lock()
	conns := int64(len(s.conns))
	s.mu.Unlock()
	s.smu.Lock()
	sessions := int64(len(s.sessions))
	s.smu.Unlock()
	m := map[string]int64{
		"remote_server.conns_accepted": int64(s.accepted.Load()),
		"remote_server.conns_live":     conns,
		"remote_server.sessions":       sessions,
		"remote_server.requests":       int64(s.requests.Load()),
		"remote_server.replays":        int64(s.replays.Load()),
		"remote_server.stale_seqs":     int64(s.staleSeqs.Load()),
		"remote_server.oversized":      int64(s.oversized.Load()),
		"remote_server.scans":          int64(s.scans.Load()),
	}
	for k, v := range kv.MetricsOf(s.store) {
		m[k] = v
	}
	return m
}

// Close stops the listener, closes live connections, and waits for
// handlers to drain. The wrapped store is not closed.
func (s *Server) Close() error {
	s.mu.Lock()
	s.done = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// ClientOptions tunes the client's transport resilience.
type ClientOptions struct {
	// Timeout bounds each network round trip (connection deadline per
	// request/response exchange; 0 = none).
	Timeout time.Duration
	// Redials is how many reconnect-and-replay attempts each operation
	// may spend after a transport failure (0 = default 2, -1 = none).
	Redials int
	// Dialer overrides the transport dialer (tests inject flaky
	// connections here); nil uses net.Dial("tcp", addr).
	Dialer func(addr string) (net.Conn, error)
}

// Client is a kv.Store backed by a remote Server. It is safe for
// concurrent use; requests are serialized over one connection (the
// dataflow model's single-writer-per-task discipline). Transport
// failures do not poison the client: the connection is dropped and
// re-dialed, and the in-flight request is replayed under its original
// sequence number, which the server deduplicates.
type Client struct {
	addr      string
	opts      ClientOptions
	sessionID uint64

	mu     sync.Mutex
	conn   net.Conn
	r      *bufio.Reader
	w      *bufio.Writer
	seq    uint64
	closed bool

	// Transport counters (atomics so Metrics doesn't contend with the
	// serialized request path).
	requests  atomic.Uint64 // operations issued (one per roundTrip)
	dials     atomic.Uint64 // successful connects, initial included
	redials   atomic.Uint64 // replay attempts after a transport failure
	failures  atomic.Uint64 // operations that exhausted the redial budget
	scans     atomic.Uint64 // range scans issued
	snapshots atomic.Uint64 // fallback snapshots materialized
	iterOps   atomic.Int64  // entries stepped through snapshot iterators
}

var _ kv.Store = (*Client)(nil)

// Dial connects to a Server with default options.
func Dial(addr string) (*Client, error) { return DialOptions(addr, ClientOptions{}) }

// DialOptions connects to a Server. The initial connection is
// established eagerly so configuration errors surface immediately.
func DialOptions(addr string, opts ClientOptions) (*Client, error) {
	if opts.Redials == 0 {
		opts.Redials = 2
	}
	if opts.Redials < 0 {
		opts.Redials = 0
	}
	var idBuf [8]byte
	if _, err := rand.Read(idBuf[:]); err != nil {
		return nil, fmt.Errorf("remote: session id: %w", err)
	}
	c := &Client{
		addr:      addr,
		opts:      opts,
		sessionID: binary.LittleEndian.Uint64(idBuf[:]),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// The initial connect shares the redial budget: a transient blip at
	// dial time should not fail client construction when redials are on.
	var err error
	for attempt := 0; attempt <= opts.Redials; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * time.Millisecond)
		}
		if err = c.connectLocked(); err == nil {
			return c, nil
		}
		c.dropConnLocked()
	}
	return nil, err
}

// Caps mirrors a store with native merge (the server translates) and
// server-side range scans. Snapshots stays false: Snapshot() works, but
// it materializes the full keyspace over the wire into a stop-the-world
// kv.FallbackSnapshot rather than a cheap pinned view.
func (c *Client) Caps() kv.Capabilities {
	return kv.Capabilities{NativeMerge: true, RangeScans: true}
}

func (c *Client) dial() (net.Conn, error) {
	if c.opts.Dialer != nil {
		return c.opts.Dialer(c.addr)
	}
	return net.Dial("tcp", c.addr)
}

// connectLocked dials and sends the session hello. Caller holds c.mu.
func (c *Client) connectLocked() error {
	conn, err := c.dial()
	if err != nil {
		return err
	}
	var hello [helloLen]byte
	binary.LittleEndian.PutUint32(hello[0:4], protoMagic)
	hello[4] = protoVersion
	binary.LittleEndian.PutUint64(hello[5:13], c.sessionID)
	if c.opts.Timeout > 0 {
		conn.SetDeadline(time.Now().Add(c.opts.Timeout))
	}
	if _, err := conn.Write(hello[:]); err != nil {
		conn.Close()
		return err
	}
	if c.opts.Timeout > 0 {
		conn.SetDeadline(time.Time{})
	}
	c.conn = conn
	c.r = bufio.NewReaderSize(conn, 64<<10)
	c.w = bufio.NewWriterSize(conn, 64<<10)
	c.dials.Add(1)
	return nil
}

// dropConnLocked discards a connection in an unknown state; the next
// operation re-dials. Caller holds c.mu.
func (c *Client) dropConnLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.r, c.w = nil, nil
	}
}

// exchangeLocked performs one framed request/response on the current
// connection. Caller holds c.mu and guarantees c.conn != nil.
func (c *Client) exchangeLocked(seq uint64, op byte, key, val []byte) ([]byte, byte, error) {
	if c.opts.Timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.opts.Timeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	var hdr [reqHdrLen]byte
	binary.LittleEndian.PutUint64(hdr[0:8], seq)
	hdr[8] = op
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[13:17], uint32(len(val)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return nil, 0, err
	}
	if _, err := c.w.Write(key); err != nil {
		return nil, 0, err
	}
	if _, err := c.w.Write(val); err != nil {
		return nil, 0, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, 0, err
	}
	var rhdr [rspHdrLen]byte
	if _, err := io.ReadFull(c.r, rhdr[:]); err != nil {
		return nil, 0, err
	}
	status := rhdr[0]
	n := binary.LittleEndian.Uint32(rhdr[1:])
	if n > maxFrame {
		// A peer violating the frame limit cannot be resynchronized.
		return nil, 0, fmt.Errorf("%w: %d-byte response", ErrFrameTooLarge, n)
	}
	out := make([]byte, n)
	if _, err := io.ReadFull(c.r, out); err != nil {
		return nil, 0, err
	}
	return out, status, nil
}

// roundTrip sends one request, reconnecting and replaying it under the
// same sequence number on transport failure. Errors it returns after
// exhausting the redial budget are transient and outcome-unknown: the
// request may or may not have been applied.
func (c *Client) roundTrip(op byte, key, val []byte) ([]byte, byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, statusError, kv.ErrClosed
	}
	if len(key) > maxFrame || len(val) > maxFrame {
		return nil, statusError, ErrFrameTooLarge
	}
	c.seq++
	seq := c.seq
	c.requests.Add(1)
	var lastErr error
	for attempt := 0; attempt <= c.opts.Redials; attempt++ {
		if attempt > 0 {
			// Brief pause so redials don't spin against a down server;
			// longer backoff belongs to the kv resilience layer above.
			c.redials.Add(1)
			time.Sleep(time.Duration(attempt) * time.Millisecond)
		}
		if c.conn == nil {
			if err := c.connectLocked(); err != nil {
				lastErr = err
				continue
			}
		}
		out, status, err := c.exchangeLocked(seq, op, key, val)
		if err == nil {
			return out, status, nil
		}
		lastErr = err
		c.dropConnLocked()
		if errors.Is(err, ErrFrameTooLarge) {
			// Protocol violation, not a transport blip: don't replay.
			return nil, statusError, err
		}
	}
	c.failures.Add(1)
	return nil, statusError, kv.UnknownOutcomeError(kv.TransientError(
		fmt.Errorf("remote: request %d failed after %d attempts: %w", seq, c.opts.Redials+1, lastErr)))
}

// Metrics implements kv.Introspector: client-side transport counters
// under "remote.*".
func (c *Client) Metrics() map[string]int64 {
	return map[string]int64{
		"remote.requests":  int64(c.requests.Load()),
		"remote.dials":     int64(c.dials.Load()),
		"remote.redials":   int64(c.redials.Load()),
		"remote.failures":  int64(c.failures.Load()),
		"remote.scans":     int64(c.scans.Load()),
		"remote.snapshots": int64(c.snapshots.Load()),
		"remote.iter_ops":  c.iterOps.Load(),
	}
}

// remoteError converts a non-OK wire status into a typed error.
func remoteError(status byte, out []byte) error {
	if status == statusTransient {
		// The server's store refused the op before applying it; safe to
		// retry, including merges.
		return kv.TransientError(fmt.Errorf("remote: %s", out))
	}
	return fmt.Errorf("remote: %s", out)
}

// Get implements kv.Store.
func (c *Client) Get(key []byte) ([]byte, error) {
	out, status, err := c.roundTrip(opGet, key, nil)
	if err != nil {
		return nil, err
	}
	switch status {
	case statusOK:
		return out, nil
	case statusNotFound:
		return nil, kv.ErrNotFound
	default:
		return nil, remoteError(status, out)
	}
}

// Put implements kv.Store.
func (c *Client) Put(key, value []byte) error { return c.write(opPut, key, value) }

// Merge implements kv.Store.
func (c *Client) Merge(key, operand []byte) error { return c.write(opMerge, key, operand) }

// Delete implements kv.Store.
func (c *Client) Delete(key []byte) error { return c.write(opDelete, key, nil) }

// ScanRange implements kv.RangeScanner with a single server-side scan
// frame: the server walks [lo, hi] against its engine's snapshot and
// returns the serialized entry list, so consistency is the server
// engine's, not dial-order's.
func (c *Client) ScanRange(lo, hi kv.StateKey) ([]kv.Entry, error) {
	bounds := hi.Encode(lo.Encode(make([]byte, 0, 2*kv.KeyLen)))
	out, status, err := c.roundTrip(opScan, bounds, nil)
	if err != nil {
		return nil, err
	}
	if status != statusOK {
		return nil, remoteError(status, out)
	}
	c.scans.Add(1)
	return decodeEntries(out)
}

// Snapshot implements kv.Snapshotter via the stop-the-world fallback: a
// full-range ScanRange materialized into a kv.FallbackSnapshot. The
// snapshot is consistent as of the server-side scan but costs one full
// keyspace transfer; Caps().Snapshots is false accordingly.
func (c *Client) Snapshot() (kv.Snapshot, error) {
	entries, err := c.ScanRange(kv.StateKey{}, kv.MaxStateKey)
	if err != nil {
		return nil, err
	}
	snap := kv.NewFallbackSnapshot(entries)
	snap.CountIterOps(&c.iterOps)
	c.snapshots.Add(1)
	return snap, nil
}

func (c *Client) write(op byte, key, val []byte) error {
	out, status, err := c.roundTrip(op, key, val)
	if err != nil {
		return err
	}
	if status != statusOK {
		return remoteError(status, out)
	}
	return nil
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.conn != nil {
		return c.conn.Close()
	}
	return nil
}
