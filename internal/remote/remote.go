// Package remote implements the paper's §8 extension: external state
// management. A Server exposes any kv.Store over TCP with a compact
// length-prefixed binary protocol, and Client implements kv.Store over
// that protocol — so the same harness that drives embedded stores can
// evaluate a decoupled compute/state deployment (multiple workload
// generator instances against one shared remote store).
//
// Protocol (all integers little-endian):
//
//	request:  op u8 | keyLen u32 | valLen u32 | key | val
//	response: status u8 | valLen u32 | val
//
// status: 0 = ok, 1 = not found, 2 = error (val holds the message).
package remote

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"gadget/internal/kv"
)

const (
	opGet byte = iota
	opPut
	opMerge
	opDelete

	statusOK       byte = 0
	statusNotFound byte = 1
	statusError    byte = 2

	maxFrame = 64 << 20
)

// Server serves a kv.Store over TCP.
type Server struct {
	store kv.Store
	ln    net.Listener
	wg    sync.WaitGroup
	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  bool
}

// Serve starts serving store on addr (e.g. "127.0.0.1:0") and returns
// once the listener is ready. Close shuts it down.
func Serve(store kv.Store, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{store: store, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.done {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	r := bufio.NewReaderSize(conn, 64<<10)
	w := bufio.NewWriterSize(conn, 64<<10)
	var hdr [9]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		op := hdr[0]
		keyLen := binary.LittleEndian.Uint32(hdr[1:])
		valLen := binary.LittleEndian.Uint32(hdr[5:])
		if keyLen > maxFrame || valLen > maxFrame {
			return
		}
		buf := make([]byte, keyLen+valLen)
		if _, err := io.ReadFull(r, buf); err != nil {
			return
		}
		key, val := buf[:keyLen], buf[keyLen:]

		var status byte
		var out []byte
		switch op {
		case opGet:
			v, err := s.store.Get(key)
			switch {
			case err == nil:
				out = v
			case errors.Is(err, kv.ErrNotFound):
				status = statusNotFound
			default:
				status, out = statusError, []byte(err.Error())
			}
		case opPut:
			if err := s.store.Put(key, val); err != nil {
				status, out = statusError, []byte(err.Error())
			}
		case opMerge:
			if err := s.store.Merge(key, val); err != nil {
				status, out = statusError, []byte(err.Error())
			}
		case opDelete:
			if err := s.store.Delete(key); err != nil {
				status, out = statusError, []byte(err.Error())
			}
		default:
			status, out = statusError, []byte("unknown op")
		}
		var rhdr [5]byte
		rhdr[0] = status
		binary.LittleEndian.PutUint32(rhdr[1:], uint32(len(out)))
		if _, err := w.Write(rhdr[:]); err != nil {
			return
		}
		if _, err := w.Write(out); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// Close stops the listener, closes live connections, and waits for
// handlers to drain. The wrapped store is not closed.
func (s *Server) Close() error {
	s.mu.Lock()
	s.done = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Client is a kv.Store backed by a remote Server. It is safe for
// concurrent use; requests are serialized over one connection (the
// dataflow model's single-writer-per-task discipline).
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	r      *bufio.Reader
	w      *bufio.Writer
	closed bool
}

var _ kv.Store = (*Client)(nil)

// Dial connects to a Server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn,
		r:    bufio.NewReaderSize(conn, 64<<10),
		w:    bufio.NewWriterSize(conn, 64<<10),
	}, nil
}

// Caps mirrors a store with native merge (the server translates).
func (c *Client) Caps() kv.Capabilities { return kv.Capabilities{NativeMerge: true} }

func (c *Client) roundTrip(op byte, key, val []byte) ([]byte, byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, statusError, kv.ErrClosed
	}
	var hdr [9]byte
	hdr[0] = op
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[5:], uint32(len(val)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return nil, statusError, err
	}
	if _, err := c.w.Write(key); err != nil {
		return nil, statusError, err
	}
	if _, err := c.w.Write(val); err != nil {
		return nil, statusError, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, statusError, err
	}
	var rhdr [5]byte
	if _, err := io.ReadFull(c.r, rhdr[:]); err != nil {
		return nil, statusError, err
	}
	status := rhdr[0]
	n := binary.LittleEndian.Uint32(rhdr[1:])
	if n > maxFrame {
		return nil, statusError, fmt.Errorf("remote: oversized response (%d bytes)", n)
	}
	out := make([]byte, n)
	if _, err := io.ReadFull(c.r, out); err != nil {
		return nil, statusError, err
	}
	return out, status, nil
}

// Get implements kv.Store.
func (c *Client) Get(key []byte) ([]byte, error) {
	out, status, err := c.roundTrip(opGet, key, nil)
	if err != nil {
		return nil, err
	}
	switch status {
	case statusOK:
		return out, nil
	case statusNotFound:
		return nil, kv.ErrNotFound
	default:
		return nil, fmt.Errorf("remote: %s", out)
	}
}

// Put implements kv.Store.
func (c *Client) Put(key, value []byte) error { return c.write(opPut, key, value) }

// Merge implements kv.Store.
func (c *Client) Merge(key, operand []byte) error { return c.write(opMerge, key, operand) }

// Delete implements kv.Store.
func (c *Client) Delete(key []byte) error { return c.write(opDelete, key, nil) }

func (c *Client) write(op byte, key, val []byte) error {
	out, status, err := c.roundTrip(op, key, val)
	if err != nil {
		return err
	}
	if status != statusOK {
		return fmt.Errorf("remote: %s", out)
	}
	return nil
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}
