package bloom

import (
	"fmt"
	"testing"
)

func TestNoFalseNegatives(t *testing.T) {
	b := NewBuilder()
	const n = 10000
	for i := 0; i < n; i++ {
		b.Add([]byte(fmt.Sprintf("key-%d", i)))
	}
	if b.Len() != n {
		t.Fatalf("Len = %d", b.Len())
	}
	f := b.Build(10)
	for i := 0; i < n; i++ {
		if !f.MayContain([]byte(fmt.Sprintf("key-%d", i))) {
			t.Fatalf("false negative for key-%d", i)
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	b := NewBuilder()
	const n = 10000
	for i := 0; i < n; i++ {
		b.Add([]byte(fmt.Sprintf("key-%d", i)))
	}
	f := b.Build(10)
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if f.MayContain([]byte(fmt.Sprintf("absent-%d", i))) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.03 {
		t.Fatalf("false positive rate %v too high", rate)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	b := NewBuilder()
	for i := 0; i < 100; i++ {
		b.Add([]byte(fmt.Sprintf("k%d", i)))
	}
	f := b.Build(10)
	f2 := FromBytes(f.Bytes())
	for i := 0; i < 100; i++ {
		if !f2.MayContain([]byte(fmt.Sprintf("k%d", i))) {
			t.Fatalf("false negative after round trip: k%d", i)
		}
	}
	if f2.k != f.k {
		t.Fatalf("k mismatch: %d vs %d", f2.k, f.k)
	}
}

func TestMalformedBytesAdmitsAll(t *testing.T) {
	f := FromBytes([]byte{1, 2})
	if !f.MayContain([]byte("anything")) {
		t.Fatal("malformed filter must admit everything (safe fallback)")
	}
	var empty Filter
	if !empty.MayContain([]byte("x")) {
		t.Fatal("zero filter must admit everything")
	}
}

func TestEmptyBuilder(t *testing.T) {
	f := NewBuilder().Build(10)
	// An empty filter should reject most keys (all bits zero).
	if f.MayContain([]byte("x")) {
		t.Fatal("empty built filter should reject")
	}
}

func TestLowBitsPerKeyClamped(t *testing.T) {
	b := NewBuilder()
	b.Add([]byte("a"))
	f := b.Build(0) // clamped to 1
	if !f.MayContain([]byte("a")) {
		t.Fatal("false negative with minimal bits")
	}
}

func BenchmarkMayContain(b *testing.B) {
	bl := NewBuilder()
	for i := 0; i < 100000; i++ {
		bl.Add([]byte(fmt.Sprintf("key-%d", i)))
	}
	f := bl.Build(10)
	key := []byte("key-54321")
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.MayContain(key)
	}
}
