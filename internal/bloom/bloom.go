// Package bloom implements the blocked Bloom filter used by SSTables to
// skip files that cannot contain a key. It uses double hashing over a
// 64-bit FNV-1a base hash, the classic Kirsch-Mitzenmacher construction.
package bloom

import "encoding/binary"

// Filter is an immutable Bloom filter. Build one with NewBuilder, or
// reconstruct a persisted one with FromBytes.
type Filter struct {
	bits []byte
	k    uint32
}

// Builder accumulates key hashes and then freezes them into a Filter.
type Builder struct {
	hashes []uint64
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// Add registers a key with the builder.
func (b *Builder) Add(key []byte) { b.hashes = append(b.hashes, hash64(key)) }

// Len returns the number of keys added so far.
func (b *Builder) Len() int { return len(b.hashes) }

// Build freezes the builder into a Filter with the given bits per key
// (10 gives ~1% false positives). The builder may be reused after.
func (b *Builder) Build(bitsPerKey int) *Filter {
	if bitsPerKey < 1 {
		bitsPerKey = 1
	}
	// k = bitsPerKey * ln(2), clamped to a sane range.
	k := uint32(float64(bitsPerKey) * 0.69)
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	nBits := len(b.hashes) * bitsPerKey
	if nBits < 64 {
		nBits = 64
	}
	nBytes := (nBits + 7) / 8
	nBits = nBytes * 8
	f := &Filter{bits: make([]byte, nBytes), k: k}
	for _, h := range b.hashes {
		delta := h>>33 | h<<31
		for i := uint32(0); i < k; i++ {
			pos := h % uint64(nBits)
			f.bits[pos/8] |= 1 << (pos % 8)
			h += delta
		}
	}
	return f
}

// MayContain reports whether key may be in the set. False means the key
// is definitely absent.
func (f *Filter) MayContain(key []byte) bool {
	if len(f.bits) == 0 {
		return true
	}
	nBits := uint64(len(f.bits)) * 8
	h := hash64(key)
	delta := h>>33 | h<<31
	for i := uint32(0); i < f.k; i++ {
		pos := h % nBits
		if f.bits[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
		h += delta
	}
	return true
}

// Bytes serializes the filter (4-byte little-endian k, then the bit array).
func (f *Filter) Bytes() []byte {
	out := make([]byte, 4+len(f.bits))
	binary.LittleEndian.PutUint32(out[:4], f.k)
	copy(out[4:], f.bits)
	return out
}

// FromBytes reconstructs a filter serialized by Bytes. An empty or
// malformed input yields a filter that admits everything, which is safe.
func FromBytes(b []byte) *Filter {
	if len(b) < 4 {
		return &Filter{}
	}
	return &Filter{k: binary.LittleEndian.Uint32(b[:4]), bits: b[4:]}
}

func hash64(key []byte) uint64 {
	const (
		offset = 0xCBF29CE484222325
		prime  = 0x100000001B3
	)
	h := uint64(offset)
	for _, c := range key {
		h ^= uint64(c)
		h *= prime
	}
	return h
}
