package datasets

import (
	"testing"

	"gadget/internal/eventgen"
)

// assertSorted verifies a stream is in arrival order with only bounded
// event-time disorder (real traces are not perfectly sorted).
func assertSorted(t *testing.T, evs []eventgen.Event, name string) {
	t.Helper()
	assertBoundedDisorder(t, evs, name, 160000)
}

func assertBoundedDisorder(t *testing.T, evs []eventgen.Event, name string, boundMs int64) {
	t.Helper()
	var maxSeen int64 = -1 << 62
	for i, e := range evs {
		if maxSeen-e.Time > boundMs {
			t.Fatalf("%s: event %d is %dms late (bound %dms)", name, i, maxSeen-e.Time, boundMs)
		}
		if e.Time > maxSeen {
			maxSeen = e.Time
		}
	}
}

func countLate(evs []eventgen.Event) int {
	late := 0
	var maxSeen int64 = -1 << 62
	for _, e := range evs {
		if e.Time < maxSeen {
			late++
		}
		if e.Time > maxSeen {
			maxSeen = e.Time
		}
	}
	return late
}

func TestBorgShape(t *testing.T) {
	s := Borg(0.01, 1)
	if s.Name != "borg" || s.Secondary == nil {
		t.Fatal("borg must have a secondary stream")
	}
	// Scale 0.01 => ~260 jobs, ~25K task events.
	if s.Keys < 100 || s.Keys > 400 {
		t.Fatalf("jobs = %d", s.Keys)
	}
	ratio := float64(len(s.Primary)) / float64(s.Keys)
	if ratio < 30 || ratio > 300 {
		t.Fatalf("task events per job = %v, want ~96", ratio)
	}
	assertSorted(t, s.Primary, "primary")
	assertSorted(t, s.Secondary, "secondary")
	// Secondary pairs starts and ends per key.
	open := map[uint64]int{}
	for _, e := range s.Secondary {
		switch e.Kind {
		case eventgen.KindStart:
			open[e.Key]++
		case eventgen.KindEnd:
			open[e.Key]--
		}
	}
	for k, n := range open {
		if n != 0 {
			t.Fatalf("unbalanced lifecycle for job %d: %d", k, n)
		}
	}
	// Bounded out-of-order arrival is part of the shape.
	if countLate(s.Primary) == 0 {
		t.Fatal("borg primary should contain late events")
	}
}

func TestTaxiShape(t *testing.T) {
	s := Taxi(0.01, 2)
	if s.Secondary == nil {
		t.Fatal("taxi must have fares")
	}
	// Trip events = 2 per trip; fares = 1 per trip.
	if len(s.Primary) != 2*len(s.Secondary) {
		t.Fatalf("trips/fares mismatch: %d vs %d", len(s.Primary), len(s.Secondary))
	}
	assertSorted(t, s.Primary, "primary")
	assertSorted(t, s.Secondary, "secondary")
	// Per-key event rate must be far lower than Borg's: compare events
	// per key per second of stream time.
	borg := Borg(0.01, 1)
	rate := func(st Streams) float64 {
		span := float64(st.Primary[len(st.Primary)-1].Time-st.Primary[0].Time) / 1000
		return float64(len(st.Primary)) / float64(st.Keys) / span
	}
	if rate(s) >= rate(borg) {
		t.Fatalf("taxi per-key rate %v should be below borg %v", rate(s), rate(borg))
	}
}

func TestAzureShape(t *testing.T) {
	s := Azure(0.001, 3)
	if s.Secondary != nil {
		t.Fatal("azure is a single stream")
	}
	if len(s.Primary) < 1000 {
		t.Fatalf("events = %d", len(s.Primary))
	}
	assertSorted(t, s.Primary, "primary")
	// Subscription ids must be skewed: top key should dominate.
	counts := map[uint64]int{}
	for _, e := range s.Primary {
		counts[e.Key]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	mean := len(s.Primary) / len(counts)
	if max < 3*mean {
		t.Fatalf("azure keys not skewed: max %d vs mean %d", max, mean)
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		s, ok := ByName(name, 0.001, 1)
		if !ok || s.Name != name {
			t.Fatalf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("nope", 1, 1); ok {
		t.Fatal("unknown dataset should fail")
	}
}

func TestSourceEmitsWatermarks(t *testing.T) {
	s := Azure(0.0005, 4)
	src := s.Source(100)
	events, wms := 0, 0
	for {
		it, ok := src.Next()
		if !ok {
			break
		}
		if it.Kind == eventgen.ItemEvent {
			events++
		} else {
			wms++
		}
	}
	if events != len(s.Primary) {
		t.Fatalf("events = %d, want %d", events, len(s.Primary))
	}
	if wms < events/100 {
		t.Fatalf("watermarks = %d", wms)
	}
}

func TestJoinSource(t *testing.T) {
	if _, ok := Azure(0.001, 1).JoinSource(100); ok {
		t.Fatal("azure join source should not exist")
	}
	s := Taxi(0.005, 5)
	src, ok := s.JoinSource(100)
	if !ok {
		t.Fatal("taxi join source missing")
	}
	counts := map[uint8]int{}
	for {
		it, okk := src.Next()
		if !okk {
			break
		}
		if it.Kind == eventgen.ItemEvent {
			counts[it.Event.Stream]++
		}
	}
	if counts[0] != len(s.Primary) || counts[1] != len(s.Secondary) {
		t.Fatalf("join source counts = %v", counts)
	}
}

func TestDeterminism(t *testing.T) {
	a := Borg(0.005, 9)
	b := Borg(0.005, 9)
	if len(a.Primary) != len(b.Primary) {
		t.Fatal("non-deterministic sizes")
	}
	for i := range a.Primary {
		if a.Primary[i] != b.Primary[i] {
			t.Fatalf("non-deterministic at %d", i)
		}
	}
}
