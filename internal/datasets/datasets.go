// Package datasets synthesizes event streams with the shapes of the
// three public traces the paper characterizes. The real traces cannot be
// bundled (this module is offline), so each generator reproduces the
// properties the paper's analysis depends on: relative arrival rate, key
// cardinality and skew, pairing structure (start/end events), per-key
// burstiness, and bounded event-time disorder. DESIGN.md §4 documents the
// substitution.
//
//   - Borg: high-rate cluster events. Jobs (the event key) arrive
//     continuously, run for tens of seconds, and emit many task status
//     events while alive; a job-lifecycle side stream carries
//     submit/finish events for continuous joins.
//   - Taxi: low-rate trip events. Medallions (the key) alternate long
//     pickup/drop-off intervals, so 5s windows see few updates and
//     sessions outlive a 2min gap; a fare side stream pairs with trips
//     for joins.
//   - Azure: VM creation events keyed by skewed subscription ids; a
//     single stream (the paper cannot run joins on it either).
package datasets

import (
	"math/rand"
	"sort"

	"gadget/internal/eventgen"
)

// Streams bundles a dataset's input streams. Secondary is nil for Azure.
type Streams struct {
	// Name identifies the dataset ("borg", "taxi", "azure").
	Name string
	// Primary is stream 0 (task events / trip events / VM events).
	Primary []eventgen.Event
	// Secondary is stream 1 (job lifecycle / fares), nil when absent.
	Secondary []eventgen.Event
	// Keys is the number of distinct keys in the primary stream.
	Keys int
	// SlackMs is the watermark delay matching the stream's bounded
	// disorder (sources subtract it from emitted watermarks).
	SlackMs int64
}

// Scale multiplies the paper-sized event counts. The experiments use
// small scales so everything runs on a laptop; shapes are preserved.

// Borg synthesizes the Google cluster-usage shape: scale 1.0 yields
// roughly the paper's 2.5M task events and 26K job events.
func Borg(scale float64, seed int64) Streams {
	if scale <= 0 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(seed))
	nJobs := int(26000 * scale)
	if nJobs < 10 {
		nJobs = 10
	}
	// The arrival rate scales with the job count so the stream's time
	// span — and therefore how windows, session gaps, and join intervals
	// relate to it — is invariant under scaling.
	jobArrivalPerSec := 10.0 * scale
	const (
		meanTaskEvents = 96 // task status events per job
		meanBurstLen   = 12 // events arrive in scheduling bursts
	)
	var primary, secondary []eventgen.Event
	clock := int64(0)
	for j := 0; j < nJobs; j++ {
		clock += int64(rng.ExpFloat64() * 1000 / jobArrivalPerSec)
		key := uint64(j) // job ids are unique and non-recurring
		secondary = append(secondary, eventgen.Event{
			Time: clock, Key: key, Size: 32, Stream: 1, Kind: eventgen.KindStart,
		})
		// Task events cluster into 30s bursts (scheduling rounds)
		// separated by multi-minute quiet periods — what splits a job
		// into several session windows under a 2-minute gap. Occasional
		// stragglers land mid-gap; combined with the arrival disorder
		// below they are what makes session windows *merge*.
		nEvents := 1 + int(rng.ExpFloat64()*meanTaskEvents)
		nBursts := nEvents/meanBurstLen + 1
		burstStart := clock
		var last int64
		for b := 0; b < nBursts && nEvents > 0; b++ {
			burstLen := meanBurstLen
			if burstLen > nEvents {
				burstLen = nEvents
			}
			nEvents -= burstLen
			for e := 0; e < burstLen; e++ {
				t := burstStart + rng.Int63n(30000)
				if t > last {
					last = t
				}
				primary = append(primary, eventgen.Event{
					Time: t, Key: key, Size: 64, Kind: eventgen.KindRecord,
				})
			}
			gap := 150000 + rng.Int63n(180000) // 2.5-5.5 min between bursts
			if b < nBursts-1 && rng.Float64() < 0.5 {
				primary = append(primary, eventgen.Event{
					Time: burstStart + gap*2/5 + rng.Int63n(gap/5),
					Key:  key, Size: 64, Kind: eventgen.KindRecord,
				})
			}
			burstStart += gap
		}
		secondary = append(secondary, eventgen.Event{
			Time: last + 60000, Key: key, Size: 32, Stream: 1, Kind: eventgen.KindEnd,
		})
	}
	sortByTime(primary)
	sortByTime(secondary)
	disorder(primary, rng, 0.20, 150000) // ~20% of task events arrive up to 2.5min late
	return Streams{Name: "borg", Primary: primary, Secondary: secondary, Keys: nJobs, SlackMs: 120000}
}

// Taxi synthesizes the NYC TLC shape: scale 1.0 yields roughly 1M trip
// events (500K trips) and 500K fare events.
func Taxi(scale float64, seed int64) Streams {
	if scale <= 0 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(seed))
	nTrips := int(500000 * scale)
	if nTrips < 10 {
		nTrips = 10
	}
	nMedallions := int(13000 * scale)
	if nMedallions < 5 {
		nMedallions = 5
	}
	const (
		meanTripDurMs = 900000 // 15 minute rides >> 2 min session gap
		meanIdleMs    = 600000 // 10 minutes between fares
	)
	type trip struct {
		key             uint64
		pickup, dropoff int64
	}
	// Each medallion runs its own sequential timeline (a taxi serves one
	// ride at a time), so trips of the same key never overlap. The
	// city-wide arrival rate emerges from the medallion count, which
	// scales with the dataset — the stream's time span stays invariant.
	trips := make([]trip, 0, nTrips)
	perMedallion := nTrips / nMedallions
	if perMedallion < 1 {
		perMedallion = 1
	}
	for m := 0; m < nMedallions && len(trips) < nTrips; m++ {
		clock := rng.Int63n(meanIdleMs)
		for i := 0; i < perMedallion && len(trips) < nTrips; i++ {
			clock += int64(rng.ExpFloat64()*meanIdleMs) + 1000
			dur := int64(rng.ExpFloat64()*meanTripDurMs) + 120000
			trips = append(trips, trip{key: uint64(m), pickup: clock, dropoff: clock + dur})
			clock += dur
		}
	}
	var primary, secondary []eventgen.Event
	for _, tr := range trips {
		primary = append(primary,
			eventgen.Event{Time: tr.pickup, Key: tr.key, Size: 48, Kind: eventgen.KindStart},
			eventgen.Event{Time: tr.dropoff, Key: tr.key, Size: 48, Kind: eventgen.KindEnd},
		)
		// Fare event lands shortly after drop-off (source clock skew).
		secondary = append(secondary, eventgen.Event{
			Time: tr.dropoff + rng.Int63n(30000), Key: tr.key, Size: 24,
			Stream: 1, Kind: eventgen.KindRecord,
		})
	}
	sortByTime(primary)
	sortByTime(secondary)
	disorder(primary, rng, 0.05, 30000) // mobile reporting delays
	disorder(secondary, rng, 0.05, 30000)
	return Streams{Name: "taxi", Primary: primary, Secondary: secondary, Keys: nMedallions, SlackMs: 30000}
}

// Azure synthesizes the Azure VM workload shape: scale 1.0 yields
// roughly 4M VM creation events over skewed subscription ids.
func Azure(scale float64, seed int64) Streams {
	if scale <= 0 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(seed))
	nEvents := int(4000000 * scale)
	if nEvents < 100 {
		nEvents = 100
	}
	nSubs := int(6000 * scale)
	if nSubs < 10 {
		nSubs = 10
	}
	creationsPerSec := 50.0 * scale // rate scales with size: span invariant
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(nSubs-1))
	events := make([]eventgen.Event, nEvents)
	clock := int64(0)
	for i := range events {
		clock += int64(rng.ExpFloat64() * 1000 / creationsPerSec)
		events[i] = eventgen.Event{
			Time: clock,
			Key:  zipf.Uint64(),
			Size: 40,
			Kind: eventgen.KindRecord,
		}
	}
	return Streams{Name: "azure", Primary: events, Keys: nSubs}
}

// ByName returns the named dataset at the given scale.
func ByName(name string, scale float64, seed int64) (Streams, bool) {
	switch name {
	case "borg":
		return Borg(scale, seed), true
	case "taxi":
		return Taxi(scale, seed), true
	case "azure":
		return Azure(scale, seed), true
	default:
		return Streams{}, false
	}
}

// Names lists the available datasets.
func Names() []string { return []string{"borg", "taxi", "azure"} }

// Source returns the primary stream with punctuated watermarks delayed
// by the stream's disorder slack.
func (s Streams) Source(wmEvery int) eventgen.Source {
	return eventgen.WithWatermarks(eventgen.NewSliceSource(s.Primary), wmEvery, s.SlackMs)
}

// JoinSource round-robins the primary and secondary streams, each
// watermarked independently, for two-input operators. It returns false
// when the dataset has no secondary stream.
func (s Streams) JoinSource(wmEvery int) (eventgen.Source, bool) {
	if s.Secondary == nil {
		return nil, false
	}
	a := eventgen.WithWatermarks(eventgen.NewSliceSource(s.Primary), wmEvery, s.SlackMs)
	b := eventgen.WithWatermarks(eventgen.NewSliceSource(s.Secondary), wmEvery, s.SlackMs)
	return eventgen.NewRoundRobin(a, b), true
}

func sortByTime(evs []eventgen.Event) {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time < evs[j].Time })
}

// disorder perturbs the *arrival* order of a time-sorted stream: each
// event keeps its true event time but a fraction of events arrive up to
// maxJitterMs late. All three public traces exhibit bounded out-of-order
// arrival; this is what makes watermarks, allowed lateness, and session
// merging do real work downstream.
func disorder(evs []eventgen.Event, rng *rand.Rand, fraction float64, maxJitterMs int64) {
	if fraction <= 0 || maxJitterMs <= 0 {
		return
	}
	keys := make([]int64, len(evs))
	for i, e := range evs {
		keys[i] = e.Time
		if rng.Float64() < fraction {
			keys[i] += 1 + rng.Int63n(maxJitterMs)
		}
	}
	idx := make([]int, len(evs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	out := make([]eventgen.Event, len(evs))
	for i, j := range idx {
		out[i] = evs[j]
	}
	copy(evs, out)
}
